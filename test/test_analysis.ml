(* Mutation and property tests for the static verifier ([cfdc check]).

   Three families:
   - clean pipelines: every configuration the compiler can produce (the
     full 6-bit option matrix, plus the paper's kernel at full size in
     both sharing modes) must verify with zero diagnostics — the verifier
     may not cry wolf, and [Explore.sweep] relies on that;
   - mutations: each defect class the verifier guards against is injected
     programmatically — an illegal schedule move, an off-by-one loop
     bound, an overlapping storage merge, a dropped initialization — and
     the suite asserts the verdict names exactly the expected rule ids,
     with a concrete witness;
   - properties: on random beta/dims schedules, verifier acceptance must
     coincide with exact-enumeration legality ([Schedule.legal]) and
     imply that the rescheduled kernel still computes the reference
     answer (interpreter differential).

   All randomized tests draw from the fixed suite seed (see
   {!Test_seed}). *)

open Cfd_core
module D = Analysis.Diagnostic
module V = Analysis.Verify
module Flow = Lower.Flow
module Schedule = Lower.Schedule

let case name f = Alcotest.test_case name `Quick f

let error_rules diags =
  List.sort_uniq compare (List.map (fun d -> d.D.rule) (D.errors diags))

let warning_rules diags =
  List.sort_uniq compare (List.map (fun d -> d.D.rule) (D.warnings diags))

let has_witness pred diags =
  List.exists
    (fun d -> match d.D.witness with Some w -> pred w | None -> false)
    diags

let check_clean what diags =
  Alcotest.(check (list string))
    (what ^ ": no diagnostics") []
    (List.map (Format.asprintf "%a" D.pp) diags)

let options_of_bits bits =
  let bit i = (bits lsr i) land 1 = 1 in
  {
    Compile.default_options with
    Compile.factorize = bit 0;
    fuse_pointwise = bit 1;
    decoupled = bit 2;
    sharing = bit 3;
    pipeline_ii = (if bit 4 then Some 2 else Some 1);
    unroll = (if bit 5 then Some 2 else None);
  }

let compile ?(options = Compile.default_options) p =
  Compile.compile ~options (Cfdlang.Ast.inverse_helmholtz ~p ())

(* ------------------------------------------------------------------ *)
(* Clean pipelines verify with zero diagnostics                        *)
(* ------------------------------------------------------------------ *)

let test_clean_full_size () =
  List.iter
    (fun sharing ->
      let options = { Compile.default_options with Compile.sharing } in
      let r = compile ~options 11 in
      check_clean
        (if sharing then "sharing" else "no_sharing")
        (Compile.check r))
    [ true; false ]

let test_clean_option_matrix () =
  for bits = 0 to 63 do
    let r = compile ~options:(options_of_bits bits) 3 in
    check_clean (Printf.sprintf "bits=%02x" bits) (Compile.check r)
  done

(* ------------------------------------------------------------------ *)
(* Frontend warnings surface through the same diagnostics              *)
(* ------------------------------------------------------------------ *)

let test_front_unused_warning () =
  let src =
    "var input u : [4 4]\nvar input w : [4 4]\nvar output v : [4 4]\nv = u * u\n"
  in
  match Compile.compile_source src with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let diags = Compile.check r in
      Alcotest.(check (list string)) "no errors" [] (error_rules diags);
      Alcotest.(check (list string))
        "unused input is a front-unused warning" [ "front-unused" ]
        (warning_rules diags);
      Alcotest.(check bool) "warning names the tensor" true
        (List.exists
           (fun d ->
             d.D.rule = "front-unused"
             && Str.string_match (Str.regexp ".*\\bw\\b.*") d.D.message 0)
           diags)

(* ------------------------------------------------------------------ *)
(* Dependence mutations                                                *)
(* ------------------------------------------------------------------ *)

(* An initialization of a consumed temporary that also has accumulations:
   moving it to the very end of the schedule must violate RAW (consumers
   read the temporary first), WAW (the accumulations precede their init)
   and use-before-def (the accumulator reads uninitialized elements). *)
let find_movable_init (program : Flow.program) =
  List.find
    (fun (s : Flow.statement) ->
      match s.Flow.compute with
      | Flow.Init _ ->
          let a = s.Flow.write.Flow.array in
          (Flow.array_info program a).Flow.kind = Flow.Temp
          && List.exists
               (fun (t : Flow.statement) ->
                 match t.Flow.compute with
                 | Flow.Mac _ -> t.Flow.write.Flow.array = a
                 | _ -> false)
               program.Flow.stmts
          && List.exists
               (fun (t : Flow.statement) ->
                 List.exists
                   (fun (r : Flow.access) -> r.Flow.array = a)
                   (Flow.reads t))
               program.Flow.stmts
      | _ -> false)
    program.Flow.stmts

let test_mutation_illegal_schedule_move () =
  let r =
    compile ~options:{ Compile.default_options with Compile.sharing = false } 4
  in
  let program = r.Compile.program and schedule = r.Compile.schedule in
  check_clean "baseline" (V.all ~program ~schedule ());
  let init = find_movable_init program in
  let last =
    List.fold_left
      (fun acc (_, (s : Schedule.sched1)) -> max acc s.Schedule.betas.(0))
      0 schedule
  in
  let schedule' =
    List.map
      (fun (name, (s : Schedule.sched1)) ->
        if name = init.Flow.stmt_name then
          let betas = Array.copy s.Schedule.betas in
          betas.(0) <- last + 1;
          (name, { s with Schedule.betas })
        else (name, s))
      schedule
  in
  let diags = V.all ~program ~schedule:schedule' () in
  Alcotest.(check (list string))
    "exactly the three expected defect classes"
    [ "dep-raw"; "dep-waw"; "use-before-def" ]
    (error_rules diags);
  Alcotest.(check bool) "dep-raw carries an instance-pair witness" true
    (has_witness
       (function D.Instance_pair _ -> true | _ -> false)
       (List.filter (fun d -> d.D.rule = "dep-raw") diags));
  Alcotest.(check bool) "the verdict names the moved statement" true
    (List.exists
       (fun d ->
         d.D.rule = "dep-waw"
         && Str.string_match
              (Str.regexp (".*" ^ Str.quote init.Flow.stmt_name ^ ".*"))
              d.D.subject 0)
       diags)

(* A three-statement write/read/overwrite chain: the only way to order
   the overwrite before the read is a WAR violation, invisible to the
   RAW and WAW rules. *)
let war_program n =
  let inst name = Poly.Space.make name [ "i" ] in
  let tensor name = Poly.Space.make name [ "i" ] in
  let ident s a = Poly.Aff_map.make (inst s) (tensor a) [| Poly.Aff.var 1 0 |] in
  let arr name kind =
    {
      Flow.array_name = name;
      kind;
      tensor_shape = [ n ];
      layout = Flow.default_layout name [ n ];
      size = n;
    }
  in
  let stmt name array compute =
    {
      Flow.stmt_name = name;
      domain = Poly.Basic_set.of_box (inst name) [ (0, n - 1) ];
      write = { Flow.array; map = ident name array };
      compute;
    }
  in
  {
    Flow.prog_name = "war";
    arrays = [ arr "x" Flow.Temp; arr "y" Flow.Output ];
    stmts =
      [
        stmt "a" "x" (Flow.Init 0.0);
        stmt "b" "y" (Flow.Assign_copy { Flow.array = "x"; map = ident "b" "x" });
        stmt "c" "x" (Flow.Init 1.0);
      ];
  }

let test_mutation_war_swap () =
  let program = war_program 8 in
  let sched b0 = { Schedule.betas = [| b0; 0 |]; dims = [| 0 |] } in
  let clean = [ ("a", sched 0); ("b", sched 1); ("c", sched 2) ] in
  check_clean "reference order" (V.all ~program ~schedule:clean ());
  let swapped = [ ("a", sched 0); ("b", sched 2); ("c", sched 1) ] in
  let diags = V.all ~program ~schedule:swapped () in
  Alcotest.(check (list string))
    "overwrite before read is exactly a WAR violation" [ "dep-war" ]
    (error_rules diags);
  Alcotest.(check bool) "witness pairs the reader with the overwriter" true
    (has_witness
       (function
         | D.Instance_pair (("b", _), ("c", _)) -> true
         | _ -> false)
       diags)

let test_mutation_dropped_init () =
  let r =
    compile ~options:{ Compile.default_options with Compile.sharing = false } 4
  in
  let program = r.Compile.program in
  let init = find_movable_init program in
  let name = init.Flow.stmt_name in
  let program' =
    {
      program with
      Flow.stmts =
        List.filter (fun (s : Flow.statement) -> s.Flow.stmt_name <> name)
          program.Flow.stmts;
    }
  in
  let schedule' = List.remove_assoc name r.Compile.schedule in
  let diags = V.all ~program:program' ~schedule:schedule' () in
  Alcotest.(check (list string))
    "uninitialized accumulator is exactly use-before-def"
    [ "use-before-def" ] (error_rules diags);
  Alcotest.(check bool) "witness is a concrete statement instance" true
    (has_witness (function D.Instance _ -> true | _ -> false) diags)

let test_mutation_schedule_structure () =
  let r =
    compile ~options:{ Compile.default_options with Compile.sharing = false } 4
  in
  let victim =
    List.find
      (fun (_, (s : Schedule.sched1)) -> Array.length s.Schedule.dims >= 2)
      r.Compile.schedule
  in
  let schedule' =
    List.map
      (fun (name, (s : Schedule.sched1)) ->
        if name = fst victim then
          (name, { s with Schedule.dims = Array.make (Array.length s.Schedule.dims) 0 })
        else (name, s))
      r.Compile.schedule
  in
  let diags = V.all ~program:r.Compile.program ~schedule:schedule' () in
  Alcotest.(check (list string))
    "a non-permutation dims vector is a structural error"
    [ "schedule-structure" ] (error_rules diags)

(* ------------------------------------------------------------------ *)
(* Bounds mutations                                                    *)
(* ------------------------------------------------------------------ *)

let loop var lo hi body =
  Loopir.Prog.For { Loopir.Prog.var; lo; hi; pragmas = []; body }

let proc params body = { Loopir.Prog.name = "p"; params; locals = []; body }

let out_param name size = { Loopir.Prog.name; size; dir = Loopir.Prog.Out }

let test_mutation_store_off_by_one () =
  let n = 6 in
  let p =
    proc
      [ out_param "a" n ]
      [
        loop "i" 0 n
          [
            Loopir.Prog.Store
              {
                array = "a";
                index = Loopir.Ix.add_const (Loopir.Ix.var "i") 1;
                value = Loopir.Prog.Const 0.0;
              };
          ];
      ]
  in
  let diags = V.bounds p in
  Alcotest.(check (list string))
    "a[i+1] over [0,n) is exactly a store violation" [ "bounds-store" ]
    (error_rules diags);
  Alcotest.(check bool) "witness pins index n against size n" true
    (has_witness (function D.Index (i, s) -> i = n && s = n | _ -> false) diags)

let test_mutation_load_off_by_one () =
  let n = 6 in
  let p =
    proc
      [ out_param "a" n; { Loopir.Prog.name = "b"; size = n; dir = Loopir.Prog.In } ]
      [
        loop "i" 0 n
          [
            Loopir.Prog.Store
              {
                array = "a";
                index = Loopir.Ix.var "i";
                value =
                  Loopir.Prog.Load ("b", Loopir.Ix.add_const (Loopir.Ix.var "i") (-1));
              };
          ];
      ]
  in
  let diags = V.bounds p in
  Alcotest.(check (list string))
    "b[i-1] over [0,n) is exactly a load violation" [ "bounds-load" ]
    (error_rules diags);
  Alcotest.(check bool)
    "witness is the least reachable out-of-range index, -1" true
    (has_witness (function D.Index (i, s) -> i = -1 && s = n | _ -> false) diags)

let test_bounds_ref_and_empty_loop () =
  let p =
    proc
      [ out_param "a" 4 ]
      [
        loop "i" 0 4
          [
            Loopir.Prog.Store
              {
                array = "zz";
                index = Loopir.Ix.var "i";
                value = Loopir.Prog.Const 0.0;
              };
            Loopir.Prog.Store
              {
                array = "a";
                index = Loopir.Ix.var "i";
                value = Loopir.Prog.Const 0.0;
              };
          ];
        loop "j" 5 5
          [
            Loopir.Prog.Store
              {
                array = "a";
                index = Loopir.Ix.const 99;
                value = Loopir.Prog.Const 0.0;
              };
          ];
      ]
  in
  let diags = V.bounds p in
  Alcotest.(check (list string))
    "undeclared buffer is a reference error" [ "bounds-ref" ]
    (error_rules diags);
  Alcotest.(check (list string))
    "the dead loop is warned about, its body not checked"
    [ "bounds-empty-loop" ] (warning_rules diags)

let test_mutation_shrunk_output () =
  let r =
    compile
      ~options:
        {
          Compile.default_options with
          Compile.sharing = false;
          decoupled = true;
        }
      4
  in
  let proc = r.Compile.proc in
  let proc' =
    {
      proc with
      Loopir.Prog.params =
        List.map
          (fun (p : Loopir.Prog.param) ->
            if p.Loopir.Prog.dir = Loopir.Prog.Out then
              { p with Loopir.Prog.size = p.Loopir.Prog.size - 1 }
            else p)
          proc.Loopir.Prog.params;
    }
  in
  check_clean "unmutated proc" (V.bounds proc);
  let diags = V.bounds proc' in
  Alcotest.(check bool) "shrinking the output buffer breaks a store" true
    (List.mem "bounds-store" (error_rules diags));
  Alcotest.(check bool) "only bounds rules fire" true
    (List.for_all
       (fun rule -> rule = "bounds-store" || rule = "bounds-load")
       (error_rules diags))

(* ------------------------------------------------------------------ *)
(* Sharing mutations                                                   *)
(* ------------------------------------------------------------------ *)

(* An honest hand-built architecture: the named groups each share one
   slot (address-space sharing); every other program array gets its own
   single-slot unit; copies and BRAM counts follow the platform rule. *)
let arch_of_slots (program : Flow.program) groups =
  let size a = (Flow.array_info program a).Flow.size in
  let mentioned = List.concat groups in
  let rest =
    List.filter_map
      (fun (i : Flow.array_info) ->
        if List.mem i.Flow.array_name mentioned then None
        else Some [ i.Flow.array_name ])
      program.Flow.arrays
  in
  let units =
    List.mapi
      (fun idx members ->
        let words = List.fold_left (fun acc m -> max acc (size m)) 0 members in
        let copies =
          List.fold_left
            (fun acc m ->
              let p = Mnemosyne.Memgen.read_ports_needed program m in
              max acc
                ((p + Fpga_platform.Bram.ports - 1) / Fpga_platform.Bram.ports))
            1 members
        in
        {
          Mnemosyne.Memgen.unit_name = Printf.sprintf "plm%d" idx;
          slots =
            [
              {
                Mnemosyne.Memgen.residents = members;
                slot_words = words;
                slot_offset = 0;
              };
            ];
          copies;
          unit_words = words;
          brams = copies * Fpga_platform.Bram.count_array ~words;
        })
      (groups @ rest)
  in
  let storage =
    List.concat_map
      (fun (u : Mnemosyne.Memgen.plm_unit) ->
        List.concat_map
          (fun (s : Mnemosyne.Memgen.slot) ->
            List.map
              (fun m ->
                (m, (u.Mnemosyne.Memgen.unit_name, s.Mnemosyne.Memgen.slot_offset)))
              s.Mnemosyne.Memgen.residents)
          u.Mnemosyne.Memgen.slots)
      units
  in
  {
    Mnemosyne.Memgen.arch_mode = Mnemosyne.Memgen.No_sharing;
    units;
    storage;
    total_brams =
      List.fold_left
        (fun acc (u : Mnemosyne.Memgen.plm_unit) -> acc + u.Mnemosyne.Memgen.brams)
        0 units;
  }

let compiled_for_sharing =
  lazy
    (let r =
       compile
         ~options:{ Compile.default_options with Compile.sharing = false }
         5
     in
     (r.Compile.program, r.Compile.schedule))

let test_mutation_overlapping_storage_merge () =
  let program, schedule = Lazy.force compiled_for_sharing in
  check_clean "honest singleton architecture"
    (V.sharing program schedule (arch_of_slots program []));
  (* merge the output with an array the output-writing statement reads:
     both are live at that statement, so aliasing one address range is
     unsound *)
  let out =
    List.find
      (fun (i : Flow.array_info) -> i.Flow.kind = Flow.Output)
      program.Flow.arrays
  in
  let writer =
    List.find
      (fun (s : Flow.statement) ->
        s.Flow.write.Flow.array = out.Flow.array_name
        && Flow.reads s <> [])
      program.Flow.stmts
  in
  let read = (List.hd (Flow.reads writer)).Flow.array in
  let arch = arch_of_slots program [ [ out.Flow.array_name; read ] ] in
  let diags = V.sharing program schedule arch in
  Alcotest.(check (list string))
    "simultaneously live residents are exactly an address-space error"
    [ "share-address-space" ] (error_rules diags);
  Alcotest.(check bool) "witness shows the overlapping live intervals" true
    (has_witness (function D.Intervals _ -> true | _ -> false) diags)

(* Two read operands of one statement stacked as separate slots of one
   unit: address spaces are disjoint, but the instance needs both in the
   same cycle — a memory-interface violation. *)
let two_operand_unit program (a, b) ~escape =
  let size x = (Flow.array_info program x).Flow.size in
  let base = arch_of_slots program [] in
  let keep =
    List.filter
      (fun (u : Mnemosyne.Memgen.plm_unit) ->
        not
          (List.exists
             (fun (s : Mnemosyne.Memgen.slot) ->
               List.mem a s.Mnemosyne.Memgen.residents
               || List.mem b s.Mnemosyne.Memgen.residents)
             u.Mnemosyne.Memgen.slots))
      base.Mnemosyne.Memgen.units
  in
  let copies x =
    (Mnemosyne.Memgen.read_ports_needed program x + Fpga_platform.Bram.ports - 1)
    / Fpga_platform.Bram.ports
  in
  let unit_words = size a + size b - if escape then 1 else 0 in
  let stacked =
    {
      Mnemosyne.Memgen.unit_name = "stack";
      slots =
        [
          {
            Mnemosyne.Memgen.residents = [ a ];
            slot_words = size a;
            slot_offset = 0;
          };
          {
            Mnemosyne.Memgen.residents = [ b ];
            slot_words = size b;
            slot_offset = size a;
          };
        ];
      copies = max (copies a) (copies b);
      unit_words;
      brams =
        max (copies a) (copies b)
        * Fpga_platform.Bram.count_array ~words:unit_words;
    }
  in
  let units = stacked :: keep in
  let storage =
    List.concat_map
      (fun (u : Mnemosyne.Memgen.plm_unit) ->
        List.concat_map
          (fun (s : Mnemosyne.Memgen.slot) ->
            List.map
              (fun m ->
                (m, (u.Mnemosyne.Memgen.unit_name, s.Mnemosyne.Memgen.slot_offset)))
              s.Mnemosyne.Memgen.residents)
          u.Mnemosyne.Memgen.slots)
      units
  in
  {
    base with
    Mnemosyne.Memgen.units;
    storage;
    total_brams =
      List.fold_left
        (fun acc (u : Mnemosyne.Memgen.plm_unit) -> acc + u.Mnemosyne.Memgen.brams)
        0 units;
  }

let conflicting_reads program =
  let stmt =
    List.find
      (fun (s : Flow.statement) ->
        List.length
          (List.sort_uniq compare
             (List.map (fun (r : Flow.access) -> r.Flow.array) (Flow.reads s)))
        >= 2)
      program.Flow.stmts
  in
  match
    List.sort_uniq compare
      (List.map (fun (r : Flow.access) -> r.Flow.array) (Flow.reads stmt))
  with
  | a :: b :: _ -> (a, b)
  | _ -> assert false

let test_mutation_interface_conflict () =
  let program, schedule = Lazy.force compiled_for_sharing in
  let pair = conflicting_reads program in
  let arch = two_operand_unit program pair ~escape:false in
  let diags = V.sharing program schedule arch in
  Alcotest.(check (list string))
    "conflicting operands in one unit are exactly an interface error"
    [ "share-interface" ] (error_rules diags)

let test_mutation_slot_escapes_unit () =
  let program, schedule = Lazy.force compiled_for_sharing in
  let pair = conflicting_reads program in
  let arch = two_operand_unit program pair ~escape:true in
  let diags = V.sharing program schedule arch in
  Alcotest.(check (list string))
    "a slot past the unit's words adds a layout error"
    [ "share-interface"; "share-layout" ]
    (error_rules diags)

let test_mutation_missing_storage () =
  let program, schedule = Lazy.force compiled_for_sharing in
  let arch = arch_of_slots program [] in
  let victim = fst (List.hd arch.Mnemosyne.Memgen.storage) in
  let arch' =
    {
      arch with
      Mnemosyne.Memgen.storage =
        List.remove_assoc victim arch.Mnemosyne.Memgen.storage;
    }
  in
  let diags = V.sharing program schedule arch' in
  Alcotest.(check (list string))
    "an unmapped array is exactly a storage error" [ "share-storage" ]
    (error_rules diags)

let test_warning_port_pressure_and_brams () =
  let program, schedule = Lazy.force compiled_for_sharing in
  let arch = arch_of_slots program [] in
  (* the same architecture audited at unroll 8: demand outgrows the
     honest unroll-1 bank copies, but nothing is incorrect *)
  let diags = V.sharing ~unroll:8 program schedule arch in
  Alcotest.(check (list string)) "no errors at higher unroll" []
    (error_rules diags);
  Alcotest.(check (list string))
    "only port-pressure warnings" [ "share-ports" ] (warning_rules diags);
  (* a unit lying about its BRAM count is flagged, again as a warning *)
  let arch' =
    match arch.Mnemosyne.Memgen.units with
    | u :: rest ->
        {
          arch with
          Mnemosyne.Memgen.units =
            { u with Mnemosyne.Memgen.brams = u.Mnemosyne.Memgen.brams + 1 }
            :: rest;
        }
    | [] -> assert false
  in
  let diags' = V.sharing program schedule arch' in
  Alcotest.(check (list string)) "still no errors" [] (error_rules diags');
  Alcotest.(check (list string))
    "BRAM accounting warnings" [ "share-brams" ] (warning_rules diags')

(* ------------------------------------------------------------------ *)
(* Property: verifier acceptance = exact legality = correct results    *)
(* ------------------------------------------------------------------ *)

let random_schedule rng (program : Flow.program) =
  let n = List.length program.Flow.stmts in
  let order = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  List.mapi
    (fun i (stmt : Flow.statement) ->
      let d = Poly.Basic_set.arity stmt.Flow.domain in
      let betas = Array.make (d + 1) 0 in
      betas.(0) <- order.(i);
      let dims = Array.init d Fun.id in
      if d > 1 && Random.State.bool rng then
        for k = d - 1 downto 1 do
          let j = Random.State.int rng (k + 1) in
          let t = dims.(k) in
          dims.(k) <- dims.(j);
          dims.(j) <- t
        done;
      (stmt.Flow.stmt_name, { Schedule.betas; dims }))
    program.Flow.stmts

(* Execute the program under [schedule'] (fresh codegen, no storage map,
   so every array is its own buffer) and compare against the reference
   semantics, mirroring [Compile.verify]. *)
let differential_ok (r : Compile.result) schedule' =
  let proc = Lower.Codegen.generate r.Compile.program schedule' in
  let inputs = Cfdlang.Eval.random_inputs ~seed:17 r.Compile.checked in
  let expected = Cfdlang.Eval.run r.Compile.checked inputs in
  let buffers =
    Loopir.Interp.run_fresh proc
      ~inputs:
        (List.map (fun (n, t) -> (n, Tensor.Dense.to_array t)) inputs)
  in
  List.for_all
    (fun (name, expected_tensor) ->
      match List.assoc_opt name buffers with
      | None -> false
      | Some buf ->
          let shape = Tensor.Dense.shape expected_tensor in
          let n = Tensor.Shape.num_elements shape in
          Tensor.Dense.equal ~tol:1e-6
            (Tensor.Dense.of_array shape (Array.sub buf 0 n))
            expected_tensor)
    expected

let qcheck_accepted_schedules_compute_reference =
  QCheck.Test.make
    ~name:"verifier-accepted random schedules = exact legality + differential"
    ~count:30
    QCheck.(pair (int_range 3 4) (int_bound 1_000_000))
    (fun (p, seed) ->
      let r =
        compile
          ~options:{ Compile.default_options with Compile.sharing = false }
          p
      in
      let program = r.Compile.program in
      let rng = Random.State.make [| seed |] in
      let schedule' = random_schedule rng program in
      let accepted = D.errors (V.all ~program ~schedule:schedule' ()) = [] in
      let legal = Schedule.legal program schedule' in
      if accepted then legal && differential_ok r schedule'
      else not legal)

let suite =
  [
    ( "analysis.clean",
      [
        case "paper kernel, both sharing modes, zero diagnostics"
          test_clean_full_size;
        case "full 6-bit option matrix at p=3, zero diagnostics"
          test_clean_option_matrix;
        case "unused input surfaces as front-unused warning"
          test_front_unused_warning;
      ] );
    ( "analysis.deps",
      [
        case "moving an init last: dep-raw + dep-waw + use-before-def"
          test_mutation_illegal_schedule_move;
        case "overwrite before read: dep-war with paired witness"
          test_mutation_war_swap;
        case "dropped init: use-before-def with instance witness"
          test_mutation_dropped_init;
        case "non-permutation dims: schedule-structure"
          test_mutation_schedule_structure;
      ] );
    ( "analysis.bounds",
      [
        case "store off-by-one: bounds-store, witness n of n"
          test_mutation_store_off_by_one;
        case "load off-by-one: bounds-load, witness -1"
          test_mutation_load_off_by_one;
        case "undeclared buffer and dead loop" test_bounds_ref_and_empty_loop;
        case "shrunk output buffer on the real pipeline"
          test_mutation_shrunk_output;
      ] );
    ( "analysis.sharing",
      [
        case "overlapping storage merge: share-address-space"
          test_mutation_overlapping_storage_merge;
        case "conflicting operands in one unit: share-interface"
          test_mutation_interface_conflict;
        case "slot escaping its unit: share-layout"
          test_mutation_slot_escapes_unit;
        case "unmapped array: share-storage" test_mutation_missing_storage;
        case "port pressure and BRAM accounting are warnings"
          test_warning_port_pressure_and_brams;
      ] );
    ( "analysis.property",
      [ Test_seed.to_alcotest qcheck_accepted_schedules_compute_reference ] );
  ]
