(* The content-addressed artifact cache (lib/cache) and its warm-start
   wiring through Compile, Explore and Costing:

   - key derivation is stable, order-sensitive and frame-safe, and the
     options fingerprint tracks exactly the knobs that change artifacts
     (static_check excluded);
   - the codec refuses truncated, bit-flipped, version-bumped and
     wrong-kind frames as [Error], never an exception;
   - the store serves both tiers, survives corruption as a miss plus
     recompute, evicts within its memory bound, and gc/clear touch only
     files the store owns;
   - a cache hit is bit-identical to the miss that wrote it, for the
     compile products, the verdict, the static cost record, and whole
     sweep outcome lists -- including jobs:1 vs jobs:N over one shared
     warm store, and composed with the static pre-filter. *)

open Cfd_core

let case name f = Alcotest.test_case name `Quick f

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cfdc-test-cache-%d-%d" (Unix.getpid ()) !n)

(* The store's directories are flat. *)
let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let counter name = Obs.Metrics.counter_value (Obs.Metrics.counter name)

(* ------------------------------------------------------------------ *)
(* Keys                                                               *)
(* ------------------------------------------------------------------ *)

let test_key_stable () =
  let hex parts = Cache.Key.to_hex (Cache.Key.make parts) in
  Alcotest.(check string)
    "same parts, same key"
    (hex [ ("a", "x"); ("b", "y") ])
    (hex [ ("a", "x"); ("b", "y") ]);
  Alcotest.(check int) "32 hex chars" 32 (String.length (hex [ ("a", "x") ]))

let test_key_framing () =
  let hex parts = Cache.Key.to_hex (Cache.Key.make parts) in
  let keys =
    [
      hex [ ("a", "bc") ];
      hex [ ("ab", "c") ];
      hex [ ("a", "b"); ("", "c") ];
      hex [ ("a", "bc"); ("", "") ];
      hex [ ("a", "x"); ("b", "y") ];
      hex [ ("b", "y"); ("a", "x") ];
    ]
  in
  let distinct = List.sort_uniq compare keys in
  Alcotest.(check int)
    "framed parts never collide across boundaries or order"
    (List.length keys) (List.length distinct)

let test_key_options () =
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:3 () in
  let o = Compile.default_options in
  let hex ?extra options =
    Cache.Key.to_hex (Compile.cache_key ?extra ~options ast)
  in
  let base = hex o in
  Alcotest.(check bool)
    "sharing flip changes the key" true
    (base <> hex { o with Compile.sharing = not o.Compile.sharing });
  Alcotest.(check bool)
    "unroll change changes the key" true
    (base <> hex { o with Compile.unroll = Some 2 });
  Alcotest.(check string)
    "static_check is not part of the fingerprint" base
    (hex { o with Compile.static_check = not o.Compile.static_check });
  Alcotest.(check bool)
    "extra parts extend the key" true
    (base <> hex ~extra:[ ("sweep", "n=512" ) ] o)

(* ------------------------------------------------------------------ *)
(* Codec                                                              *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let v = ([ 1; 2; 3 ], "hello", 4.5) in
  let s = Cache.Codec.encode ~kind:"blob" v in
  match Cache.Codec.decode ~kind:"blob" s with
  | Ok v' -> Alcotest.(check bool) "decode . encode = id" true (v = v')
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_codec_rejects () =
  let s = Cache.Codec.encode ~kind:"blob" [ 1; 2; 3 ] in
  let expect_error what frame =
    match Cache.Codec.decode ~kind:"blob" frame with
    | Ok (_ : int list) -> Alcotest.failf "%s decoded successfully" what
    | Error _ -> ()
  in
  (match Cache.Codec.decode ~kind:"other" s with
  | Ok (_ : int list) -> Alcotest.fail "wrong kind accepted"
  | Error _ -> ());
  expect_error "truncated" (String.sub s 0 (String.length s - 3));
  expect_error "header only" (String.sub s 0 8);
  expect_error "empty" "";
  expect_error "garbage" "not a cache frame at all\n";
  let flipped = Bytes.of_string s in
  let i = String.length s - 1 in
  Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0x40));
  expect_error "bit-flipped payload" (Bytes.to_string flipped)

(* ------------------------------------------------------------------ *)
(* Store                                                              *)
(* ------------------------------------------------------------------ *)

let kind = "blob"
let key_of s = Cache.Key.make [ ("test", s) ]
let encode (v : string list) = Cache.Codec.encode ~kind v
let decode s : (string list, string) result = Cache.Codec.decode ~kind s
let find store k = Cache.Store.find store ~kind k ~decode
let put store k v = Cache.Store.store store ~kind k ~encode v

let test_store_memory_roundtrip () =
  let store = Cache.Store.create () in
  let k = key_of "m" in
  Alcotest.(check bool) "absent before store" true (find store k = None);
  put store k [ "alpha"; "beta" ];
  Alcotest.(check bool)
    "round-trips through tier one" true
    (find store k = Some [ "alpha"; "beta" ])

let test_store_disk_roundtrip () =
  with_dir @@ fun dir ->
  let store1 = Cache.Store.create ~dir () in
  let k = key_of "d" in
  put store1 k [ "gamma" ];
  (* a fresh store over the same directory simulates a new process:
     tier one is empty, the hit must come from disk *)
  let store2 = Cache.Store.create ~dir () in
  Alcotest.(check bool)
    "round-trips through the disk tier" true
    (find store2 k = Some [ "gamma" ]);
  let s = Cache.Store.stats store2 in
  Alcotest.(check int) "one disk entry" 1 s.Cache.Store.st_disk_entries;
  Alcotest.(check bool) "non-empty" true (s.Cache.Store.st_disk_bytes > 0)

let entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ("." ^ kind))
  |> List.map (Filename.concat dir)

let corrupting how dir =
  match entry_files dir with
  | [] -> Alcotest.fail "no entry file to corrupt"
  | file :: _ ->
      let ic = open_in_bin file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let s' = how s in
      let oc = open_out_bin file in
      output_string oc s';
      close_out oc

let test_corruption how name =
  with_dir @@ fun dir ->
  let k = key_of name in
  put (Cache.Store.create ~dir ()) k [ "payload"; name ];
  corrupting how dir;
  let store = Cache.Store.create ~dir () in
  let misses0 = counter "cache.misses" in
  Alcotest.(check bool) (name ^ " entry is a miss") true (find store k = None);
  Alcotest.(check bool)
    (name ^ " counted in cache.misses") true
    (counter "cache.misses" > misses0);
  (* recompute-and-store must recover the entry *)
  put store k [ "payload"; name ];
  Alcotest.(check bool)
    (name ^ " recovered after recompute") true
    (find store k = Some [ "payload"; name ])

let test_store_truncated () =
  test_corruption (fun s -> String.sub s 0 (String.length s / 2)) "truncated"

let test_store_bitflip () =
  test_corruption
    (fun s ->
      let b = Bytes.of_string s in
      let i = String.length s - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      Bytes.to_string b)
    "bit-flipped"

let test_store_version_mismatch () =
  (* bump the frame's format-version token in place: a future (or past)
     writer's entry must read as a miss, not a crash *)
  test_corruption
    (fun s ->
      match String.index_opt s '\n' with
      | None -> "cfdc1 999 blob deadbeef 0\n"
      | Some nl -> (
          let header = String.sub s 0 nl in
          let rest = String.sub s nl (String.length s - nl) in
          match String.split_on_char ' ' header with
          | magic :: _version :: tail ->
              String.concat " " (magic :: "999" :: tail) ^ rest
          | _ -> "cfdc1 999 blob deadbeef 0\n"))
    "version-bumped"

let test_store_eviction () =
  let store = Cache.Store.create ~max_memory_entries:2 () in
  let ev0 = counter "cache.evictions" in
  put store (key_of "e1") [ "1" ];
  put store (key_of "e2") [ "2" ];
  put store (key_of "e3") [ "3" ];
  let s = Cache.Store.stats store in
  Alcotest.(check int) "memory bounded" 2 s.Cache.Store.st_memory_entries;
  Alcotest.(check bool)
    "eviction counted" true
    (counter "cache.evictions" > ev0);
  Alcotest.(check bool)
    "newest entry survives" true
    (find store (key_of "e3") = Some [ "3" ])

let test_store_gc_clear () =
  with_dir @@ fun dir ->
  let store = Cache.Store.create ~dir () in
  put store (key_of "g1") [ "1" ];
  put store (key_of "g2") [ "2" ];
  (* a stale temp file from a crashed writer, and a foreign file the
     store must never touch *)
  let stale = Filename.concat dir "tmp-stale123.part" in
  let foreign = Filename.concat dir "README.txt" in
  List.iter
    (fun f ->
      let oc = open_out_bin f in
      output_string oc "x";
      close_out oc)
    [ stale; foreign ];
  let removed = Cache.Store.gc store in
  Alcotest.(check int) "gc without budget removes only temps" 1 removed;
  Alcotest.(check bool) "stale temp gone" false (Sys.file_exists stale);
  Alcotest.(check int)
    "entries kept" 2
    (Cache.Store.stats store).Cache.Store.st_disk_entries;
  let removed = Cache.Store.gc ~max_bytes:0 store in
  Alcotest.(check int) "gc to zero removes both entries" 2 removed;
  Alcotest.(check int)
    "disk empty" 0
    (Cache.Store.stats store).Cache.Store.st_disk_entries;
  put store (key_of "g3") [ "3" ];
  let removed = Cache.Store.clear store in
  Alcotest.(check int) "clear removes the entry" 1 removed;
  Alcotest.(check bool) "foreign file untouched" true (Sys.file_exists foreign);
  Alcotest.(check bool) "cleared from memory too" true
    (find store (key_of "g3") = None)

(* ------------------------------------------------------------------ *)
(* Warm-start compile / check / cost                                  *)
(* ------------------------------------------------------------------ *)

let same_result r1 r2 =
  r1.Compile.c_source = r2.Compile.c_source
  && Stdlib.compare r1.Compile.proc r2.Compile.proc = 0
  && Stdlib.compare r1.Compile.memory r2.Compile.memory = 0
  && Stdlib.compare r1.Compile.hls r2.Compile.hls = 0
  && r1.Compile.mnemosyne_metadata = r2.Compile.mnemosyne_metadata

let test_compile_hit_identical () =
  with_dir @@ fun dir ->
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:3 () in
  let cold = Compile.compile ast in
  let store = Cache.Store.create ~dir () in
  let miss = Compile.compile ~cache:store ast in
  let hits0 = counter "cache.hits" in
  let hit = Compile.compile ~cache:store ast in
  Alcotest.(check bool) "hit served from tier one" true
    (counter "cache.hits" > hits0);
  (* a fresh store over the same directory: the disk-tier hit *)
  let disk_hit = Compile.compile ~cache:(Cache.Store.create ~dir ()) ast in
  Alcotest.(check bool) "miss = uncached" true (same_result cold miss);
  Alcotest.(check bool) "memory hit = uncached" true (same_result cold hit);
  Alcotest.(check bool) "disk hit = uncached" true (same_result cold disk_hit)

let test_check_verdict_cached () =
  with_dir @@ fun dir ->
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:3 () in
  let r = Compile.compile ast in
  let fresh = Compile.check r in
  let store = Cache.Store.create ~dir () in
  let miss = Compile.check ~cache:store r in
  let runs0 = counter "verify.runs" in
  let hit = Compile.check ~cache:store r in
  Alcotest.(check int)
    "verdict hit skips the verifier" runs0 (counter "verify.runs");
  Alcotest.(check bool) "miss verdict = fresh" true
    (Stdlib.compare fresh miss = 0);
  Alcotest.(check bool) "hit verdict = fresh" true
    (Stdlib.compare fresh hit = 0)

let test_costing_warm () =
  with_dir @@ fun dir ->
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:3 () in
  let r = Compile.compile ast in
  let cold = Costing.analyze ~n_elements:512 r in
  let store = Cache.Store.create ~dir () in
  let miss = Costing.analyze ~cache:store ~n_elements:512 r in
  let warm = Costing.analyze ~cache:store ~n_elements:512 r in
  Alcotest.(check bool) "cached report = uncached" true
    (Stdlib.compare cold miss = 0 && Stdlib.compare cold warm = 0)

(* ------------------------------------------------------------------ *)
(* Warm-start sweeps                                                  *)
(* ------------------------------------------------------------------ *)

let test_sweep_warm_start () =
  with_dir @@ fun dir ->
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:3 () in
  let baseline = Explore.sweep ~jobs:2 ~n_elements:512 ast in
  let store = Cache.Store.create ~dir () in
  let cold = Explore.sweep ~jobs:2 ~cache:store ~n_elements:512 ast in
  let c0 = counter "compile.runs" and v0 = counter "verify.runs" in
  let warm = Explore.sweep ~jobs:2 ~cache:store ~n_elements:512 ast in
  Alcotest.(check int) "warm sweep compiles nothing" c0
    (counter "compile.runs");
  Alcotest.(check int) "warm sweep verifies nothing" v0
    (counter "verify.runs");
  Alcotest.(check bool) "cold cached sweep = uncached" true
    (Stdlib.compare baseline cold = 0);
  Alcotest.(check bool) "warm sweep = uncached" true
    (Stdlib.compare baseline warm = 0)

let test_sweep_jobs_shared_cache () =
  with_dir @@ fun dir ->
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:3 () in
  let store = Cache.Store.create ~dir () in
  let s1 = Explore.sweep ~jobs:1 ~cache:store ~n_elements:512 ast in
  let s4 = Explore.sweep ~jobs:4 ~cache:store ~n_elements:512 ast in
  Alcotest.(check bool) "jobs:4 over the warm store = jobs:1" true
    (Stdlib.compare s1 s4 = 0);
  (* and through a fresh store on the same directory (new process) *)
  let s1' =
    Explore.sweep ~jobs:1 ~cache:(Cache.Store.create ~dir ()) ~n_elements:512
      ast
  in
  Alcotest.(check bool) "disk-tier warm sweep agrees" true
    (Stdlib.compare s1 s1' = 0)

let test_sweep_prefilter_composes () =
  with_dir @@ fun dir ->
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:3 () in
  let baseline = Explore.sweep ~jobs:2 ~prefilter:true ~n_elements:512 ast in
  let store = Cache.Store.create ~dir () in
  let cold =
    Explore.sweep ~jobs:2 ~prefilter:true ~cache:store ~n_elements:512 ast
  in
  let warm =
    Explore.sweep ~jobs:2 ~prefilter:true ~cache:store ~n_elements:512 ast
  in
  Alcotest.(check bool) "prefilter x cache, cold = uncached" true
    (Stdlib.compare baseline cold = 0);
  Alcotest.(check bool) "prefilter x cache, warm = uncached" true
    (Stdlib.compare baseline warm = 0)

(* ------------------------------------------------------------------ *)
(* qcheck: random kernels x option points                             *)
(* ------------------------------------------------------------------ *)

let qcheck_artifact_roundtrip =
  QCheck.Test.make ~name:"artifact codecs: decode . encode = id" ~count:12
    (QCheck.make Test_integration.gen_program)
    (fun source_opt ->
      match source_opt with
      | None -> true
      | Some source -> (
          match Compile.compile_source source with
          | Error msg ->
              QCheck.Test.fail_reportf "compile failed: %s\n%s" msg source
          | Ok r -> (
              let p =
                {
                  Cache.Artifact.a_memory = r.Compile.memory;
                  a_proc = r.Compile.proc;
                  a_c_source = r.Compile.c_source;
                  a_hls = r.Compile.hls;
                  a_metadata = r.Compile.mnemosyne_metadata;
                }
              in
              (match
                 Cache.Artifact.decode_products
                   (Cache.Artifact.encode_products p)
               with
              | Error e -> QCheck.Test.fail_reportf "products decode: %s" e
              | Ok p' ->
                  Stdlib.compare p p' = 0
                  || QCheck.Test.fail_reportf "products round-trip drift\n%s"
                       source)
              &&
              let d = Compile.check r in
              match
                Cache.Artifact.decode_verdict (Cache.Artifact.encode_verdict d)
              with
              | Error e -> QCheck.Test.fail_reportf "verdict decode: %s" e
              | Ok d' ->
                  Stdlib.compare d d' = 0
                  || QCheck.Test.fail_reportf "verdict round-trip drift\n%s"
                       source)))

let qcheck_hit_equals_miss =
  QCheck.Test.make
    ~name:"cache hit = miss, bit for bit, across option points" ~count:6
    (QCheck.make Test_integration.gen_program)
    (fun source_opt ->
      match source_opt with
      | None -> true
      | Some source ->
          with_dir @@ fun dir ->
          List.for_all
            (fun (factorize, decoupled, sharing) ->
              let options =
                {
                  Compile.default_options with
                  Compile.factorize;
                  decoupled;
                  sharing;
                }
              in
              let cache = Cache.Store.create ~dir () in
              match
                ( Compile.compile_source ~options source,
                  Compile.compile_source ~cache ~options source )
              with
              | Ok cold, Ok miss -> (
                  match Compile.compile_source ~cache ~options source with
                  | Ok hit ->
                      (same_result cold miss && same_result cold hit
                      && Stdlib.compare (Compile.check cold)
                           (Compile.check ~cache hit)
                         = 0)
                      || QCheck.Test.fail_reportf
                           "hit differs from miss (f=%b d=%b s=%b)\n%s"
                           factorize decoupled sharing source
                  | Error msg ->
                      QCheck.Test.fail_reportf "hit compile: %s\n%s" msg
                        source)
              | Error msg, _ | _, Error msg ->
                  QCheck.Test.fail_reportf "compile: %s\n%s" msg source)
            [ (true, true, true); (false, true, false); (true, false, true) ])

let suite =
  [
    ( "cache.key",
      [
        case "stable and hex" test_key_stable;
        case "framing and order" test_key_framing;
        case "options fingerprint" test_key_options;
      ] );
    ( "cache.codec",
      [
        case "round-trip" test_codec_roundtrip;
        case "rejects damaged frames" test_codec_rejects;
      ] );
    ( "cache.store",
      [
        case "memory round-trip" test_store_memory_roundtrip;
        case "disk round-trip" test_store_disk_roundtrip;
        case "truncated entry is a miss" test_store_truncated;
        case "bit-flipped entry is a miss" test_store_bitflip;
        case "version mismatch is a miss" test_store_version_mismatch;
        case "memory tier evicts" test_store_eviction;
        case "gc and clear" test_store_gc_clear;
      ] );
    ( "cache.pipeline",
      [
        case "compile hit = cold compile" test_compile_hit_identical;
        case "verdict cached" test_check_verdict_cached;
        case "static cost cached" test_costing_warm;
        case "sweep warm-start" test_sweep_warm_start;
        case "sweep jobs share one store" test_sweep_jobs_shared_cache;
        case "sweep prefilter composes" test_sweep_prefilter_composes;
      ] );
    ( "cache.qcheck",
      [
        QCheck_alcotest.to_alcotest qcheck_artifact_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_hit_equals_miss;
      ] );
  ]
