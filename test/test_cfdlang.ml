(* Tests for lib/cfdlang: lexer, parser, type checker, evaluator. *)

open Cfdlang

let case name f = Alcotest.test_case name `Quick f

let figure1_source =
  {|
// Figure 1: Inverse Helmholtz operator for p = 11
var input  S : [11 11]
var input  D : [11 11 11]
var input  u : [11 11 11]
var output v : [11 11 11]
var t : [11 11 11]
var r : [11 11 11]
t = S # S # S # u . [[1 6] [3 7] [5 8]]
r = D * t
v = S # S # S # r . [[0 6] [2 7] [4 8]]
|}

(* ---------- Lexer ---------- *)

let test_lex_keywords () =
  let toks = List.map fst (Lexer.tokenize "var input output foo 42 3.5") in
  Alcotest.(check bool) "tokens" true
    (toks
    = [
        Lexer.VAR;
        Lexer.INPUT;
        Lexer.OUTPUT;
        Lexer.IDENT "foo";
        Lexer.INT 42;
        Lexer.FLOAT 3.5;
        Lexer.EOF;
      ])

let test_lex_operators () =
  let toks = List.map fst (Lexer.tokenize "# . * / + - = : [ ] ( )") in
  Alcotest.(check int) "count" 13 (List.length toks)

let test_lex_comment () =
  let toks = List.map fst (Lexer.tokenize "a // comment # * [\nb") in
  Alcotest.(check bool) "comment skipped" true
    (toks = [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ])

let test_lex_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  (match toks with
  | [ (_, p1); (_, p2); _ ] ->
      Alcotest.(check int) "line a" 1 p1.Lexer.line;
      Alcotest.(check int) "line b" 2 p2.Lexer.line;
      Alcotest.(check int) "col b" 3 p2.Lexer.col
  | _ -> Alcotest.fail "unexpected token count")

let test_lex_error () =
  match Lexer.tokenize "a $ b" with
  | _ -> Alcotest.fail "expected Lexer.Error"
  | exception Lexer.Error (_, _) -> ()

let test_lex_dot_vs_float () =
  (* "u . [" must lex DOT, while "3.5" lexes FLOAT *)
  let toks = List.map fst (Lexer.tokenize "u . 3.5") in
  Alcotest.(check bool) "dot and float" true
    (toks = [ Lexer.IDENT "u"; Lexer.DOT; Lexer.FLOAT 3.5; Lexer.EOF ])

(* ---------- Parser ---------- *)

let test_parse_figure1 () =
  let p = Parser.parse figure1_source in
  Alcotest.(check int) "decls" 6 (List.length p.Ast.decls);
  Alcotest.(check int) "stmts" 3 (List.length p.Ast.stmts);
  let expected = Ast.inverse_helmholtz () in
  Alcotest.(check bool) "matches builtin AST" true (p = expected)

let test_parse_precedence_contract_over_prod () =
  (* '.' binds looser than '#': the whole product is contracted. *)
  let e = Parser.parse_expr "a # b . [[0 1]]" in
  match e with
  | Ast.Contract (Ast.Prod (Ast.Var "a", Ast.Var "b"), [ (0, 1) ]) -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_precedence_mul_over_add () =
  let e = Parser.parse_expr "a + b * c" in
  match e with
  | Ast.Add (Ast.Var "a", Ast.Mul (Ast.Var "b", Ast.Var "c")) -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_left_assoc () =
  let e = Parser.parse_expr "a - b - c" in
  match e with
  | Ast.Sub (Ast.Sub (Ast.Var "a", Ast.Var "b"), Ast.Var "c") -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_parens () =
  let e = Parser.parse_expr "(a + b) * c" in
  match e with
  | Ast.Mul (Ast.Add _, Ast.Var "c") -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_chained_contraction () =
  let e = Parser.parse_expr "a # b . [[0 2]] . [[0 1]]" in
  match e with
  | Ast.Contract (Ast.Contract (Ast.Prod _, [ (0, 2) ]), [ (0, 1) ]) -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_errors () =
  let expect_parse_error src =
    match Parser.parse src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Parser.Error _ -> ()
  in
  expect_parse_error "var : [1]";
  expect_parse_error "var x [1]";
  expect_parse_error "x = ";
  expect_parse_error "x = a . [0 1]";
  expect_parse_error "x = (a";
  expect_parse_error "var x : [1] x = 1 +"

let test_parse_unary_minus () =
  (match Parser.parse_expr "-a" with
  | Ast.Sub (Ast.Num 0.0, Ast.Var "a") -> ()
  | _ -> Alcotest.fail "unary minus");
  (match Parser.parse_expr "-a * b" with
  (* unary minus binds to the atom: (-a) * b *)
  | Ast.Mul (Ast.Sub (Ast.Num 0.0, Ast.Var "a"), Ast.Var "b") -> ()
  | _ -> Alcotest.fail "unary binds tight");
  match Parser.parse_expr "a - -b" with
  | Ast.Sub (Ast.Var "a", Ast.Sub (Ast.Num 0.0, Ast.Var "b")) -> ()
  | _ -> Alcotest.fail "double minus"

let test_parse_scalar_decl () =
  let p = Parser.parse "var input s : []\nvar output o : []\no = s * 2" in
  match p.Ast.decls with
  | [ d1; _ ] -> Alcotest.(check (list int)) "scalar" [] d1.Ast.dims
  | _ -> Alcotest.fail "unexpected decls"

let test_roundtrip_figure1 () =
  let p = Ast.inverse_helmholtz () in
  let printed = Ast.to_string p in
  let reparsed = Parser.parse printed in
  Alcotest.(check bool) "pp/parse round-trip" true (p = reparsed)

(* Random expression generator for pretty-print/parse round-trip. *)
let rec gen_expr depth =
  QCheck.Gen.(
    if depth = 0 then
      oneof [ return (Ast.Var "a"); return (Ast.Var "b"); map (fun n -> Ast.Num (float_of_int n)) (int_range 0 9) ]
    else
      let sub = gen_expr (depth - 1) in
      frequency
        [
          (2, map2 (fun a b -> Ast.Add (a, b)) sub sub);
          (2, map2 (fun a b -> Ast.Sub (a, b)) sub sub);
          (2, map2 (fun a b -> Ast.Mul (a, b)) sub sub);
          (1, map2 (fun a b -> Ast.Div (a, b)) sub sub);
          (2, map2 (fun a b -> Ast.Prod (a, b)) sub sub);
          (1, map (fun a -> Ast.Contract (a, [ (0, 1) ])) sub);
          (1, sub);
        ])

let qcheck_pp_parse_roundtrip =
  QCheck.Test.make ~name:"expression pp/parse round-trip" ~count:200
    (QCheck.make (gen_expr 3))
    (fun e ->
      let printed = Format.asprintf "%a" Ast.pp_expr e in
      match Parser.parse_expr printed with
      | e' -> e = e'
      | exception _ -> false)

(* ---------- Check ---------- *)

let ok_or_fail = function
  | Ok c -> c
  | Error e -> Alcotest.failf "unexpected type error: %a" Check.pp_error e

let expect_type_error src =
  match Check.parse_and_check src with
  | Ok _ -> Alcotest.failf "expected type error in %S" src
  | Error _ -> ()

let test_check_figure1 () =
  let c = ok_or_fail (Check.parse_and_check figure1_source) in
  Alcotest.(check (list int)) "shape of v" [ 11; 11; 11 ] (c.Check.shape_of "v");
  Alcotest.(check int) "stmt shapes" 3 (List.length c.Check.stmt_shapes)

let test_check_contraction_shape () =
  let c =
    ok_or_fail
      (Check.parse_and_check
         "var input A : [3 4]\nvar input x : [4]\nvar output y : [3]\n\
          y = A # x . [[1 2]]")
  in
  Alcotest.(check (list int)) "y" [ 3 ] (c.Check.shape_of "y")

let test_check_errors () =
  expect_type_error "var input a : [2]\nvar output b : [2]\nb = a + c";
  (* undeclared *)
  expect_type_error "var input a : [2]\nvar output b : [3]\nb = a";
  (* shape mismatch *)
  expect_type_error "var input a : [2]\nvar output b : [2]\na = b\nb = a";
  (* assign to input *)
  expect_type_error "var input a : [2]\nvar output b : [2]\nb = a\nb = a";
  (* double assignment *)
  expect_type_error "var input a : [2]\nvar output b : [2]";
  (* output never assigned *)
  expect_type_error "var input a : [2]\nvar input a : [2]\nvar output b : [2]\nb = a";
  (* duplicate decl *)
  expect_type_error "var input a : [2 3]\nvar output b : [2]\nb = a . [[0 1]]";
  (* contraction extent mismatch *)
  expect_type_error "var input a : [2 2]\nvar output b : []\nb = a . [[0 0]]";
  (* degenerate pair *)
  expect_type_error
    "var input a : [2 2]\nvar input c : [2 2]\nvar output b : [2 2]\nb = a + a * c + 1 . [[5 6]]"
  (* pair out of range *)

let test_check_def_before_use () =
  expect_type_error
    "var input a : [2]\nvar output b : [2]\nvar t : [2]\nb = t\nt = a"

let test_check_scalar_broadcast () =
  let c =
    ok_or_fail
      (Check.parse_and_check
         "var input a : [2 2]\nvar output b : [2 2]\nb = a * 2 + a / 4")
  in
  Alcotest.(check (list int)) "b" [ 2; 2 ] (c.Check.shape_of "b")

let test_check_local_used_without_def () =
  expect_type_error "var input a : [2]\nvar output b : [2]\nvar t : [2]\nb = a + t"

let test_check_warnings () =
  let c =
    ok_or_fail
      (Check.parse_and_check
         "var input a : [2]\nvar input unused_in : [2]\nvar output b : [2]\n\
          var dead : [2]\ndead = a + a\nb = a")
  in
  let ws = Check.warnings c in
  Alcotest.(check int) "two warnings" 2 (List.length ws);
  Alcotest.(check bool) "unused input" true
    (List.exists (fun w -> w = "input tensor unused_in is never read") ws);
  Alcotest.(check bool) "dead local" true
    (List.exists (fun w -> w = "local tensor dead is assigned but never consumed") ws)

let test_check_no_warnings_figure1 () =
  let c = ok_or_fail (Check.parse_and_check figure1_source) in
  Alcotest.(check (list string)) "clean" [] (Check.warnings c)

(* ---------- Eval ---------- *)

open Tensor

let test_eval_figure1_matches_reference () =
  let c = ok_or_fail (Check.parse_and_check figure1_source) in
  let inputs = Helmholtz.make_inputs ~seed:5 11 in
  let bindings = [ ("S", inputs.Helmholtz.s); ("D", inputs.Helmholtz.d); ("u", inputs.Helmholtz.u) ] in
  match Eval.run c bindings with
  | [ ("v", v) ] ->
      let expected = Helmholtz.direct inputs in
      Alcotest.(check bool) "matches tensor reference" true
        (Dense.equal ~tol:1e-9 v expected)
  | _ -> Alcotest.fail "expected single output v"

let test_eval_small_program () =
  let c =
    ok_or_fail
      (Check.parse_and_check
         "var input A : [2 2]\nvar input x : [2]\nvar output y : [2]\n\
          y = A # x . [[1 2]]")
  in
  let a = Dense.of_array (Shape.create [ 2; 2 ]) [| 1.; 2.; 3.; 4. |] in
  let x = Dense.of_array (Shape.create [ 2 ]) [| 1.; 1. |] in
  match Eval.run c [ ("A", a); ("x", x) ] with
  | [ ("y", y) ] ->
      Alcotest.(check bool) "matvec" true
        (Dense.equal y (Dense.of_array (Shape.create [ 2 ]) [| 3.; 7. |]))
  | _ -> Alcotest.fail "expected y"

let test_eval_arith_scalar () =
  let c =
    ok_or_fail
      (Check.parse_and_check
         "var input a : [3]\nvar output b : [3]\nb = (a + a) * 0.5 - a")
  in
  let a = Dense.random ~seed:1 (Shape.create [ 3 ]) in
  match Eval.run c [ ("a", a) ] with
  | [ ("b", b) ] ->
      Alcotest.(check bool) "zero" true
        (Dense.equal ~tol:1e-12 b (Dense.create (Shape.create [ 3 ])))
  | _ -> Alcotest.fail "expected b"

let test_eval_missing_input () =
  let c =
    ok_or_fail (Check.parse_and_check "var input a : [2]\nvar output b : [2]\nb = a")
  in
  match Eval.run c [] with
  | _ -> Alcotest.fail "expected Eval_error"
  | exception Eval.Eval_error _ -> ()

let test_eval_extra_binding_rejected () =
  let c =
    ok_or_fail (Check.parse_and_check "var input a : [2]\nvar output b : [2]\nb = a")
  in
  let a = Dense.random ~seed:1 (Shape.create [ 2 ]) in
  match Eval.run c [ ("a", a); ("zz", a) ] with
  | _ -> Alcotest.fail "expected Eval_error"
  | exception Eval.Eval_error _ -> ()

let test_eval_wrong_shape_input () =
  let c =
    ok_or_fail (Check.parse_and_check "var input a : [2]\nvar output b : [2]\nb = a")
  in
  let bad = Dense.random ~seed:1 (Shape.create [ 3 ]) in
  match Eval.run c [ ("a", bad) ] with
  | _ -> Alcotest.fail "expected Eval_error"
  | exception Eval.Eval_error _ -> ()

let test_eval_interpolation_builtin () =
  let c = ok_or_fail (Check.check (Ast.interpolation ~p:4 ())) in
  let s = Dense.random ~seed:11 (Shape.create [ 4; 4 ]) in
  let u = Dense.random ~seed:12 (Shape.cube 3 4) in
  match Eval.run c [ ("S", s); ("u", u) ] with
  | [ ("v", v) ] ->
      Alcotest.(check bool) "interpolation" true
        (Dense.equal ~tol:1e-9 v (Helmholtz.interpolation s u))
  | _ -> Alcotest.fail "expected v"

let qcheck_eval_add_commutes =
  QCheck.Test.make ~name:"program-level a+b = b+a" ~count:50
    QCheck.(int_range 0 100)
    (fun seed ->
      let src ord =
        Printf.sprintf
          "var input a : [4]\nvar input b : [4]\nvar output c : [4]\nc = %s"
          (if ord then "a + b" else "b + a")
      in
      let run ord =
        let c = Result.get_ok (Check.parse_and_check (src ord)) in
        let a = Dense.random ~seed (Shape.create [ 4 ]) in
        let b = Dense.random ~seed:(seed + 1) (Shape.create [ 4 ]) in
        List.assoc "c" (Eval.run c [ ("a", a); ("b", b) ])
      in
      Dense.equal (run true) (run false))

let suite =
  [
    ( "cfdlang.lexer",
      [
        case "keywords & literals" test_lex_keywords;
        case "operators" test_lex_operators;
        case "comments" test_lex_comment;
        case "positions" test_lex_positions;
        case "lexical error" test_lex_error;
        case "dot vs float" test_lex_dot_vs_float;
      ] );
    ( "cfdlang.parser",
      [
        case "figure 1 program" test_parse_figure1;
        case "contract looser than #" test_parse_precedence_contract_over_prod;
        case "* over +" test_parse_precedence_mul_over_add;
        case "left associativity" test_parse_left_assoc;
        case "parentheses" test_parse_parens;
        case "chained contraction" test_parse_chained_contraction;
        case "syntax errors" test_parse_errors;
        case "unary minus" test_parse_unary_minus;
        case "scalar declaration" test_parse_scalar_decl;
        case "figure 1 round-trip" test_roundtrip_figure1;
        Test_seed.to_alcotest qcheck_pp_parse_roundtrip;
      ] );
    ( "cfdlang.check",
      [
        case "figure 1 checks" test_check_figure1;
        case "contraction shape" test_check_contraction_shape;
        case "rejections" test_check_errors;
        case "def before use" test_check_def_before_use;
        case "scalar broadcast" test_check_scalar_broadcast;
        case "local used without def" test_check_local_used_without_def;
        case "warnings" test_check_warnings;
        case "no warnings on figure 1" test_check_no_warnings_figure1;
      ] );
    ( "cfdlang.eval",
      [
        case "figure 1 = tensor reference" test_eval_figure1_matches_reference;
        case "matvec program" test_eval_small_program;
        case "scalar arithmetic" test_eval_arith_scalar;
        case "missing input" test_eval_missing_input;
        case "extra binding rejected" test_eval_extra_binding_rejected;
        case "wrong input shape" test_eval_wrong_shape_input;
        case "interpolation builtin" test_eval_interpolation_builtin;
        Test_seed.to_alcotest qcheck_eval_add_commutes;
      ] );
  ]
