(* Black-box tests of the cfdc command line: the profile and memprof
   subcommands exit 0 on a good kernel and write well-formed JSON
   artifacts; bad flags and missing files exit non-zero. Runs the real
   binary as a subprocess, like CI does. *)

let cfdc () =
  if Sys.file_exists "../bin/cfdc.exe" then "../bin/cfdc.exe"
  else "_build/default/bin/cfdc.exe"

let kernel name =
  let dir = if Sys.file_exists "../kernels" then "../kernels" else "kernels" in
  Filename.concat dir name

(* Run cfdc with [args]; returns the exit code, output discarded (the
   artifact files are what the assertions read). *)
let run args =
  Sys.command
    (String.concat " "
       (List.map Filename.quote (cfdc () :: args))
    ^ " >/dev/null 2>&1")

(* Like [run], but keeps stdout+stderr for assertions on diagnostics. *)
let run_capture args =
  let out = Filename.temp_file "cfdc_cli" ".out" in
  let code =
    Sys.command
      (String.concat " "
         (List.map Filename.quote (cfdc () :: args))
      ^ " >" ^ Filename.quote out ^ " 2>&1")
  in
  let ic = open_in_bin out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains ~sub s =
  let n = String.length sub and l = String.length s in
  let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
  go 0

let tmp suffix = Filename.temp_file "cfdc_cli" suffix

let parse_file what path =
  match Obs.Json.of_file path with
  | Ok t -> t
  | Error msg -> Alcotest.failf "%s is not well-formed JSON: %s" what msg

let member_exn what k t =
  match Obs.Json.member k t with
  | Some v -> v
  | None -> Alcotest.failf "%s: missing %S" what k

let test_memprof_ok () =
  let json = tmp ".json" and trace = tmp ".trace.json" in
  let code =
    run [ "memprof"; kernel "mass.cfd"; "--name"; "mass"; "--sim-elements";
          "2"; "--json"; json; "--trace"; trace ]
  in
  Alcotest.(check int) "memprof exits 0" 0 code;
  let t = parse_file "memprof JSON" json in
  (match member_exn "memprof JSON" "audit_passed" t with
  | Obs.Json.Bool true -> ()
  | v -> Alcotest.failf "audit_passed = %s" (Obs.Json.to_string v));
  (match member_exn "memprof JSON" "kernel" t with
  | Obs.Json.String "mass" -> ()
  | v -> Alcotest.failf "kernel = %s" (Obs.Json.to_string v));
  (match member_exn "memprof JSON" "modes" t with
  | Obs.Json.List [ _; _ ] -> ()
  | v -> Alcotest.failf "expected two modes, got %s" (Obs.Json.to_string v));
  (match member_exn "memprof trace" "traceEvents" (parse_file "trace" trace) with
  | Obs.Json.List (_ :: _) -> ()
  | _ -> Alcotest.fail "counter trace has no events");
  Sys.remove json;
  Sys.remove trace

let test_memprof_reproduces_paper () =
  let json = tmp ".json" in
  let code =
    run [ "memprof"; kernel "inverse_helmholtz.cfd"; "--name";
          "inverse_helmholtz"; "--json"; json ]
  in
  Alcotest.(check int) "memprof exits 0" 0 code;
  let t = parse_file "memprof JSON" json in
  (match member_exn "memprof JSON" "no_sharing_brams" t with
  | Obs.Json.Int 31 -> ()
  | v -> Alcotest.failf "no_sharing_brams = %s" (Obs.Json.to_string v));
  (match member_exn "memprof JSON" "sharing_brams" t with
  | Obs.Json.Int 18 -> ()
  | v -> Alcotest.failf "sharing_brams = %s" (Obs.Json.to_string v));
  Sys.remove json

let test_profile_ok () =
  let metrics = tmp ".metrics.json" and trace = tmp ".trace.json" in
  let code =
    run [ "profile"; kernel "mass.cfd"; "--name"; "mass"; "--sim-elements";
          "2"; "--metrics"; metrics; "--trace"; trace ]
  in
  Alcotest.(check int) "profile exits 0" 0 code;
  let m = parse_file "profile metrics" metrics in
  (match member_exn "profile metrics" "counters" m with
  | Obs.Json.Obj (_ :: _) -> ()
  | _ -> Alcotest.fail "metrics carries no counters");
  (match member_exn "profile trace" "traceEvents" (parse_file "trace" trace) with
  | Obs.Json.List (_ :: _) -> ()
  | _ -> Alcotest.fail "trace has no events");
  Sys.remove metrics;
  Sys.remove trace

(* The sharded strategy on the profile pipeline: both spellings accepted,
   recorder leg skipped but the run itself succeeds at any jobs. *)
let test_profile_strategy_flags () =
  List.iter
    (fun args ->
      Alcotest.(check int)
        ("profile " ^ String.concat " " args ^ " exits 0")
        0
        (run
           ([ "profile"; kernel "mass.cfd"; "--name"; "mass"; "--sim-elements";
              "4" ]
           @ args)))
    [
      [ "--strategy"; "shard"; "--jobs"; "3" ];
      [ "--strategy"; "sharded" ];
      [ "--strategy"; "round"; "--jobs"; "2" ];
    ]

(* The memprof pipeline needs Kelly-reconstructable timestamps: the
   sharded strategy must be refused with a diagnostic pointing at the
   round-scheduled one, not silently mis-profiled. *)
let test_memprof_rejects_sharded () =
  let code, text =
    run_capture
      [ "memprof"; kernel "mass.cfd"; "--sim-elements"; "2"; "--strategy";
        "shard" ]
  in
  Alcotest.(check bool) "memprof --strategy shard exits non-zero" true
    (code <> 0);
  Alcotest.(check bool) "diagnostic points at round-scheduled" true
    (contains ~sub:"round-scheduled" text)

(* Like [run_capture], but with an environment assignment prefixed to
   the shell command (e.g. "CFDC_CACHE_DIR=/tmp/x"). *)
let run_capture_env env args =
  let out = Filename.temp_file "cfdc_cli" ".out" in
  let code =
    Sys.command
      (env ^ " "
      ^ String.concat " " (List.map Filename.quote (cfdc () :: args))
      ^ " >" ^ Filename.quote out ^ " 2>&1")
  in
  let ic = open_in_bin out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let tmp_dir () =
  let d = Filename.temp_file "cfdc_cli" ".cache" in
  Sys.remove d;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_cache_dir f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Warnings (the corrupt-entry path) go to stderr with a stable prefix;
   dropping those lines recovers the kernel-facing output for
   byte-comparison against an undisturbed run. *)
let strip_cache_warnings text =
  String.split_on_char '\n' text
  |> List.filter (fun line ->
         not
           (String.length line >= 11 && String.sub line 0 11 = "cfdc: cache"))
  |> String.concat "\n"

let test_cache_warm_identical () =
  with_cache_dir @@ fun dir ->
  let args = [ "check"; kernel "mass.cfd"; "--cache-dir"; dir ] in
  let c1, t1 = run_capture args in
  let c2, t2 = run_capture args in
  Alcotest.(check int) "cold cached check exits 0" 0 c1;
  Alcotest.(check int) "warm cached check exits 0" 0 c2;
  Alcotest.(check string) "warm output byte-identical to cold" t1 t2;
  let entries = Sys.readdir dir in
  Alcotest.(check bool) "store populated" true
    (Array.exists (fun f -> Filename.check_suffix f ".products") entries
    && Array.exists (fun f -> Filename.check_suffix f ".verdict") entries)

let test_cache_corrupt_recovers () =
  with_cache_dir @@ fun dir ->
  let args = [ "check"; kernel "mass.cfd"; "--cache-dir"; dir ] in
  let _, clean = run_capture args in
  (* truncate every entry: the next run must warn, recompute, and
     still produce the identical kernel-facing output with exit 0 *)
  Array.iter
    (fun f ->
      let path = Filename.concat dir f in
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic / 2) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc s;
      close_out oc)
    (Sys.readdir dir);
  let code, text = run_capture args in
  Alcotest.(check int) "corrupt store still exits 0" 0 code;
  Alcotest.(check bool) "warns about the corrupt entry" true
    (contains ~sub:"corrupt entry" text);
  Alcotest.(check string) "recomputed output identical"
    (strip_cache_warnings clean)
    (strip_cache_warnings text);
  let c3, t3 = run_capture args in
  Alcotest.(check int) "re-warmed run exits 0" 0 c3;
  Alcotest.(check string) "re-warmed output identical" clean t3

let test_cache_env_dir () =
  with_cache_dir @@ fun dir ->
  let env = "CFDC_CACHE_DIR=" ^ Filename.quote dir in
  let args = [ "check"; kernel "mass.cfd" ] in
  let c1, t1 = run_capture_env env args in
  let c2, t2 = run_capture_env env args in
  Alcotest.(check int) "env-cached check exits 0" 0 c1;
  Alcotest.(check int) "env-warm check exits 0" 0 c2;
  Alcotest.(check string) "env-warm output identical" t1 t2;
  Alcotest.(check bool) "CFDC_CACHE_DIR populated" true
    (Array.length (Sys.readdir dir) > 0)

let test_cache_stat_gc_clear () =
  with_cache_dir @@ fun dir ->
  let _ = run [ "check"; kernel "mass.cfd"; "--cache-dir"; dir ] in
  let code, text = run_capture [ "cache"; "stat"; "--cache-dir"; dir ] in
  Alcotest.(check int) "cache stat exits 0" 0 code;
  Alcotest.(check bool) "stat names the directory" true
    (contains ~sub:dir text);
  Alcotest.(check bool) "stat reports kinds" true
    (contains ~sub:"products" text && contains ~sub:"verdict" text);
  let code, text =
    run_capture [ "cache"; "gc"; "--cache-dir"; dir; "--max-bytes"; "0" ]
  in
  Alcotest.(check int) "cache gc exits 0" 0 code;
  Alcotest.(check bool) "gc reports removals" true
    (contains ~sub:"gc: removed" text);
  Alcotest.(check int) "gc --max-bytes 0 empties the store" 0
    (Array.length (Sys.readdir dir));
  let _ = run [ "check"; kernel "mass.cfd"; "--cache-dir"; dir ] in
  let code, text = run_capture [ "cache"; "clear"; "--cache-dir"; dir ] in
  Alcotest.(check int) "cache clear exits 0" 0 code;
  Alcotest.(check bool) "clear reports removals" true
    (contains ~sub:"clear: removed" text);
  Alcotest.(check int) "clear empties the store" 0
    (Array.length (Sys.readdir dir))

let parse_json what text =
  match Obs.Json.parse (String.trim text) with
  | Ok t -> t
  | Error msg -> Alcotest.failf "%s is not well-formed JSON: %s" what msg

(* Build identity: the human rendering names the tool and both schema
   dialects; `version --json` and the top-level `--build-info` print the
   same machine-readable record. *)
let test_version_build_info () =
  let code, text = run_capture [ "version" ] in
  Alcotest.(check int) "version exits 0" 0 code;
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " reported") true (contains ~sub text))
    [ "cfdc "; "cache key schema"; "options fingerprint"; "ocaml" ];
  let code, json_text = run_capture [ "version"; "--json" ] in
  Alcotest.(check int) "version --json exits 0" 0 code;
  let j = parse_json "version --json" json_text in
  List.iter
    (fun k -> ignore (member_exn "build info" k j))
    [ "tool"; "cache_key_format_version"; "options_fingerprint_version";
      "ocaml" ];
  let code, build_text = run_capture [ "--build-info" ] in
  Alcotest.(check int) "--build-info exits 0" 0 code;
  Alcotest.(check string) "--build-info = version --json"
    (String.trim json_text) (String.trim build_text)

(* `flight dump` writes a provenance-stamped bundle even without a
   crash; `flight show` renders it. *)
let test_flight_dump_show () =
  let out = tmp ".bundle.json" in
  let code, _ = run_capture [ "flight"; "dump"; "--out"; out ] in
  Alcotest.(check int) "flight dump exits 0" 0 code;
  let b = parse_file "flight bundle" out in
  (match member_exn "bundle" "bundle_format_version" b with
  | Obs.Json.Int _ -> ()
  | v -> Alcotest.failf "bundle_format_version = %s" (Obs.Json.to_string v));
  (match member_exn "bundle" "reason" b with
  | Obs.Json.String "manual dump" -> ()
  | v -> Alcotest.failf "reason = %s" (Obs.Json.to_string v));
  ignore
    (member_exn "bundle provenance" "build"
       (member_exn "bundle" "provenance" b));
  (match member_exn "bundle" "metrics" b with
  | Obs.Json.Obj _ -> ()
  | _ -> Alcotest.fail "metrics snapshot missing");
  let code, text = run_capture [ "flight"; "show"; out ] in
  Alcotest.(check int) "flight show exits 0" 0 code;
  Alcotest.(check bool) "show renders the reason" true
    (contains ~sub:"reason:  manual dump" text);
  Alcotest.(check bool) "show renders the provenance" true
    (contains ~sub:"provenance:" text);
  Sys.remove out

(* A fatal diagnostic with the recorder armed (CFDC_FLIGHT=1) must dump
   a post-mortem bundle into CFDC_CRASH_DIR carrying the failure's
   reason and the build provenance, and say where it wrote it. *)
let test_crash_report_on_fatal () =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let env =
    "CFDC_FLIGHT=1 CFDC_CRASH_DIR=" ^ Filename.quote dir
  in
  let code, text =
    run_capture_env env
      [ "memprof"; kernel "mass.cfd"; "--sim-elements"; "2"; "--strategy";
        "shard" ]
  in
  Alcotest.(check bool) "fatal path exits non-zero" true (code <> 0);
  Alcotest.(check bool) "stderr names the crash report" true
    (contains ~sub:"crash report:" text);
  let bundles =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
  in
  Alcotest.(check int) "exactly one bundle written" 1 (List.length bundles);
  let b = parse_file "crash bundle" (Filename.concat dir (List.hd bundles)) in
  (match member_exn "crash bundle" "reason" b with
  | Obs.Json.String r ->
      Alcotest.(check bool) "reason names the failing strategy" true
        (contains ~sub:"round-scheduled" r)
  | v -> Alcotest.failf "reason = %s" (Obs.Json.to_string v));
  ignore
    (member_exn "crash provenance" "build"
       (member_exn "crash bundle" "provenance" b));
  match member_exn "crash bundle" "entries" b with
  | Obs.Json.List _ -> ()
  | _ -> Alcotest.fail "entries missing from the bundle"

(* --log writes one JSON object per line; --log-level debug widens the
   threshold so the sink actually sees events. *)
let test_log_sink_jsonl () =
  let log = tmp ".log.jsonl" in
  let code =
    run [ "check"; kernel "mass.cfd"; "--log"; log; "--log-level"; "debug" ]
  in
  Alcotest.(check int) "check --log exits 0" 0 code;
  let ic = open_in log in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Alcotest.(check bool)
    "a debug-level check run produces log events" true
    (List.length !lines > 0);
  List.iter
    (fun line ->
      let j = parse_json "log line" line in
      List.iter
        (fun k -> ignore (member_exn "log line" k j))
        [ "ts"; "level"; "scope"; "msg"; "tid"; "span" ])
    !lines;
  Sys.remove log

let test_bad_flags_rejected () =
  List.iter
    (fun (what, args) ->
      Alcotest.(check bool)
        (what ^ " exits non-zero") true
        (run args <> 0))
    [
      ("unknown flag", [ "memprof"; kernel "mass.cfd"; "--no-such-flag" ]);
      ("missing source", [ "memprof"; "/nonexistent/kernel.cfd" ]);
      ("no source argument", [ "memprof" ]);
      ("profile unknown flag", [ "profile"; kernel "mass.cfd"; "--bogus" ]);
      ( "profile unknown strategy",
        [ "profile"; kernel "mass.cfd"; "--strategy"; "bogus" ] );
      ( "memprof unknown strategy",
        [ "memprof"; kernel "mass.cfd"; "--strategy"; "bogus" ] );
      ( "profile missing source",
        [ "profile"; "/nonexistent/kernel.cfd"; "--sim-elements"; "2" ] );
      ("unknown subcommand", [ "memprofile" ]);
      ("unknown cache action", [ "cache"; "bogus" ]);
      ("cache without action", [ "cache" ]);
    ]

let () =
  Alcotest.run "cfdc-cli"
    [
      ( "cli",
        [
          Alcotest.test_case "memprof writes well-formed artifacts" `Quick
            test_memprof_ok;
          Alcotest.test_case "memprof reproduces 31 -> 18 BRAM18" `Quick
            test_memprof_reproduces_paper;
          Alcotest.test_case "profile writes well-formed artifacts" `Quick
            test_profile_ok;
          Alcotest.test_case "profile accepts both strategies" `Quick
            test_profile_strategy_flags;
          Alcotest.test_case "memprof refuses the sharded strategy" `Quick
            test_memprof_rejects_sharded;
          Alcotest.test_case "bad flags and missing files exit non-zero"
            `Quick test_bad_flags_rejected;
        ] );
      ( "cache",
        [
          Alcotest.test_case "warm cached check is byte-identical" `Quick
            test_cache_warm_identical;
          Alcotest.test_case "corrupt entry recomputes with a warning" `Quick
            test_cache_corrupt_recovers;
          Alcotest.test_case "CFDC_CACHE_DIR enables the cache" `Quick
            test_cache_env_dir;
          Alcotest.test_case "cache stat, gc and clear" `Quick
            test_cache_stat_gc_clear;
        ] );
      ( "flight",
        [
          Alcotest.test_case "version and --build-info report the build"
            `Quick test_version_build_info;
          Alcotest.test_case "flight dump and show round-trip a bundle"
            `Quick test_flight_dump_show;
          Alcotest.test_case "fatal diagnostic writes a crash report" `Quick
            test_crash_report_on_fatal;
          Alcotest.test_case "--log sink is well-formed JSONL" `Quick
            test_log_sink_jsonl;
        ] );
    ]
