(* Black-box tests of the cfdc command line: the profile and memprof
   subcommands exit 0 on a good kernel and write well-formed JSON
   artifacts; bad flags and missing files exit non-zero. Runs the real
   binary as a subprocess, like CI does. *)

let cfdc () =
  if Sys.file_exists "../bin/cfdc.exe" then "../bin/cfdc.exe"
  else "_build/default/bin/cfdc.exe"

let kernel name =
  let dir = if Sys.file_exists "../kernels" then "../kernels" else "kernels" in
  Filename.concat dir name

(* Run cfdc with [args]; returns the exit code, output discarded (the
   artifact files are what the assertions read). *)
let run args =
  Sys.command
    (String.concat " "
       (List.map Filename.quote (cfdc () :: args))
    ^ " >/dev/null 2>&1")

(* Like [run], but keeps stdout+stderr for assertions on diagnostics. *)
let run_capture args =
  let out = Filename.temp_file "cfdc_cli" ".out" in
  let code =
    Sys.command
      (String.concat " "
         (List.map Filename.quote (cfdc () :: args))
      ^ " >" ^ Filename.quote out ^ " 2>&1")
  in
  let ic = open_in_bin out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains ~sub s =
  let n = String.length sub and l = String.length s in
  let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
  go 0

let tmp suffix = Filename.temp_file "cfdc_cli" suffix

let parse_file what path =
  match Obs.Json.of_file path with
  | Ok t -> t
  | Error msg -> Alcotest.failf "%s is not well-formed JSON: %s" what msg

let member_exn what k t =
  match Obs.Json.member k t with
  | Some v -> v
  | None -> Alcotest.failf "%s: missing %S" what k

let test_memprof_ok () =
  let json = tmp ".json" and trace = tmp ".trace.json" in
  let code =
    run [ "memprof"; kernel "mass.cfd"; "--name"; "mass"; "--sim-elements";
          "2"; "--json"; json; "--trace"; trace ]
  in
  Alcotest.(check int) "memprof exits 0" 0 code;
  let t = parse_file "memprof JSON" json in
  (match member_exn "memprof JSON" "audit_passed" t with
  | Obs.Json.Bool true -> ()
  | v -> Alcotest.failf "audit_passed = %s" (Obs.Json.to_string v));
  (match member_exn "memprof JSON" "kernel" t with
  | Obs.Json.String "mass" -> ()
  | v -> Alcotest.failf "kernel = %s" (Obs.Json.to_string v));
  (match member_exn "memprof JSON" "modes" t with
  | Obs.Json.List [ _; _ ] -> ()
  | v -> Alcotest.failf "expected two modes, got %s" (Obs.Json.to_string v));
  (match member_exn "memprof trace" "traceEvents" (parse_file "trace" trace) with
  | Obs.Json.List (_ :: _) -> ()
  | _ -> Alcotest.fail "counter trace has no events");
  Sys.remove json;
  Sys.remove trace

let test_memprof_reproduces_paper () =
  let json = tmp ".json" in
  let code =
    run [ "memprof"; kernel "inverse_helmholtz.cfd"; "--name";
          "inverse_helmholtz"; "--json"; json ]
  in
  Alcotest.(check int) "memprof exits 0" 0 code;
  let t = parse_file "memprof JSON" json in
  (match member_exn "memprof JSON" "no_sharing_brams" t with
  | Obs.Json.Int 31 -> ()
  | v -> Alcotest.failf "no_sharing_brams = %s" (Obs.Json.to_string v));
  (match member_exn "memprof JSON" "sharing_brams" t with
  | Obs.Json.Int 18 -> ()
  | v -> Alcotest.failf "sharing_brams = %s" (Obs.Json.to_string v));
  Sys.remove json

let test_profile_ok () =
  let metrics = tmp ".metrics.json" and trace = tmp ".trace.json" in
  let code =
    run [ "profile"; kernel "mass.cfd"; "--name"; "mass"; "--sim-elements";
          "2"; "--metrics"; metrics; "--trace"; trace ]
  in
  Alcotest.(check int) "profile exits 0" 0 code;
  let m = parse_file "profile metrics" metrics in
  (match member_exn "profile metrics" "counters" m with
  | Obs.Json.Obj (_ :: _) -> ()
  | _ -> Alcotest.fail "metrics carries no counters");
  (match member_exn "profile trace" "traceEvents" (parse_file "trace" trace) with
  | Obs.Json.List (_ :: _) -> ()
  | _ -> Alcotest.fail "trace has no events");
  Sys.remove metrics;
  Sys.remove trace

(* The sharded strategy on the profile pipeline: both spellings accepted,
   recorder leg skipped but the run itself succeeds at any jobs. *)
let test_profile_strategy_flags () =
  List.iter
    (fun args ->
      Alcotest.(check int)
        ("profile " ^ String.concat " " args ^ " exits 0")
        0
        (run
           ([ "profile"; kernel "mass.cfd"; "--name"; "mass"; "--sim-elements";
              "4" ]
           @ args)))
    [
      [ "--strategy"; "shard"; "--jobs"; "3" ];
      [ "--strategy"; "sharded" ];
      [ "--strategy"; "round"; "--jobs"; "2" ];
    ]

(* The memprof pipeline needs Kelly-reconstructable timestamps: the
   sharded strategy must be refused with a diagnostic pointing at the
   round-scheduled one, not silently mis-profiled. *)
let test_memprof_rejects_sharded () =
  let code, text =
    run_capture
      [ "memprof"; kernel "mass.cfd"; "--sim-elements"; "2"; "--strategy";
        "shard" ]
  in
  Alcotest.(check bool) "memprof --strategy shard exits non-zero" true
    (code <> 0);
  Alcotest.(check bool) "diagnostic points at round-scheduled" true
    (contains ~sub:"round-scheduled" text)

let test_bad_flags_rejected () =
  List.iter
    (fun (what, args) ->
      Alcotest.(check bool)
        (what ^ " exits non-zero") true
        (run args <> 0))
    [
      ("unknown flag", [ "memprof"; kernel "mass.cfd"; "--no-such-flag" ]);
      ("missing source", [ "memprof"; "/nonexistent/kernel.cfd" ]);
      ("no source argument", [ "memprof" ]);
      ("profile unknown flag", [ "profile"; kernel "mass.cfd"; "--bogus" ]);
      ( "profile unknown strategy",
        [ "profile"; kernel "mass.cfd"; "--strategy"; "bogus" ] );
      ( "memprof unknown strategy",
        [ "memprof"; kernel "mass.cfd"; "--strategy"; "bogus" ] );
      ( "profile missing source",
        [ "profile"; "/nonexistent/kernel.cfd"; "--sim-elements"; "2" ] );
      ("unknown subcommand", [ "memprofile" ]);
    ]

let () =
  Alcotest.run "cfdc-cli"
    [
      ( "cli",
        [
          Alcotest.test_case "memprof writes well-formed artifacts" `Quick
            test_memprof_ok;
          Alcotest.test_case "memprof reproduces 31 -> 18 BRAM18" `Quick
            test_memprof_reproduces_paper;
          Alcotest.test_case "profile writes well-formed artifacts" `Quick
            test_profile_ok;
          Alcotest.test_case "profile accepts both strategies" `Quick
            test_profile_strategy_flags;
          Alcotest.test_case "memprof refuses the sharded strategy" `Quick
            test_memprof_rejects_sharded;
          Alcotest.test_case "bad flags and missing files exit non-zero"
            `Quick test_bad_flags_rejected;
        ] );
    ]
