(* Differential tests for the compiled LoopIR execution engine.

   The compiled engine ({!Loopir.Compiled}) must be observably
   indistinguishable from the tree-walking reference interpreter
   ({!Loopir.Interp}) — bit-identical buffers on success, agreement on
   error — across:

   - randomly generated loop-nest programs (qcheck), at Checked mode
     always, and additionally at Unchecked/Debug when the static
     verifier licenses them;
   - the full 64-point compile-option matrix on a small programmatic
     kernel;
   - every kernel under [kernels/], on representative option sets.

   Plus unit tests for the verifier license itself (an out-of-bounds
   proc must be refused the unchecked fast path), the CFD_EXEC_DEBUG
   escape hatch, the persistent work pool, and the [~jobs] plumbing of
   the functional simulator.

   All randomized tests draw from the fixed suite seed ({!Test_seed}). *)

open Loopir

let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Bit-exact comparison of run results                                 *)
(* ------------------------------------------------------------------ *)

let sort_bindings l = List.sort (fun (a, _) (b, _) -> compare a b) l

let buffers_identical got expected =
  let got = sort_bindings got and expected = sort_bindings expected in
  List.length got = List.length expected
  && List.for_all2
       (fun (n1, (b1 : float array)) (n2, b2) ->
         n1 = n2
         && Array.length b1 = Array.length b2
         && Array.for_all2
              (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
              b1 b2)
       got expected

type outcome = Ran of (string * float array) list | Failed of string

let run_interp proc inputs =
  match Interp.run_fresh proc ~inputs with
  | bindings -> Ran bindings
  | exception Interp.Error m -> Failed m

let run_compiled ~mode proc inputs =
  match Compiled.run_fresh ~mode proc ~inputs with
  | bindings -> Ran bindings
  | exception Compiled.Error m -> Failed m

(* The differential heart: reference and compiled engine must agree on
   outcome; on success the buffers must match bit for bit. When the
   static verifier licenses unchecked execution, the reference must not
   have failed a bounds check (that would be verifier unsoundness), and
   the unchecked and debug runs must reproduce the reference bits. *)
let check_differential ?(debug = true) ~what proc inputs =
  let reference = run_interp proc inputs in
  let mode = Analysis.Verify.execution_mode proc in
  (match (reference, run_compiled ~mode:Compiled.Checked proc inputs) with
  | Ran bi, Ran bc ->
      if not (buffers_identical bc bi) then
        Alcotest.failf "%s: checked run differs from interpreter" what
  | Failed _, Failed _ ->
      if mode = Compiled.Unchecked then
        Alcotest.failf
          "%s: verifier licensed unchecked execution but the reference \
           interpreter failed a dynamic check"
          what
  | Ran _, Failed m ->
      Alcotest.failf "%s: compiled errored (%s) but interpreter succeeded" what
        m
  | Failed m, Ran _ ->
      Alcotest.failf "%s: interpreter errored (%s) but compiled succeeded" what
        m);
  match reference with
  | Failed _ -> ()
  | Ran bi ->
      (match mode with
      | Compiled.Unchecked -> (
          match run_compiled ~mode:Compiled.Unchecked proc inputs with
          | Ran bu ->
              if not (buffers_identical bu bi) then
                Alcotest.failf "%s: unchecked run differs from interpreter"
                  what
          | Failed m -> Alcotest.failf "%s: unchecked run errored: %s" what m)
      | _ -> ());
      (* The debug leg replays the whole run through the interpreter, so
         callers skip it where the reference is expensive. *)
      if debug then
        match run_compiled ~mode:Compiled.Debug proc inputs with
        | Ran bd ->
            if not (buffers_identical bd bi) then
              Alcotest.failf "%s: debug run differs from interpreter" what
        | Failed m ->
            Alcotest.failf "%s: debug cross-check rejected a clean run: %s"
              what m

(* ------------------------------------------------------------------ *)
(* Random loop-nest programs                                           *)
(* ------------------------------------------------------------------ *)

(* Generates procs that satisfy {!Prog.validate} — declared arrays,
   bound loop variables, non-empty loops, scalars set before read —
   but whose array indices may run out of bounds, so the Checked
   engine's error path is exercised against the interpreter's. *)

type spec = { proc : Prog.proc; inputs : (string * float array) list }

let gen_spec =
  QCheck.Gen.(
    let gen_value = int_range (-64) 64 >|= fun n -> float_of_int n /. 16. in
    let gen_ix bound =
      match bound with
      | [] -> int_range 0 5 >|= Ix.const
      | _ ->
          list_size
            (return (List.length bound))
            (frequency [ (3, return 0); (5, return 1); (1, return 2) ])
          >>= fun coeffs ->
          int_range 0 3 >|= fun const ->
          let terms =
            List.filter
              (fun (c, _) -> c <> 0)
              (List.map2 (fun c (v, _, _) -> (c, v)) coeffs bound)
          in
          Ix.of_terms terms const
    in
    let arrays = [ "a"; "b"; "c"; "t" ] in
    let rec gen_expr depth scalars bound =
      let leaf =
        [
          (2, gen_value >|= fun f -> Prog.Const f);
          ( 5,
            pair (oneofl arrays) (gen_ix bound) >|= fun (a, ix) ->
            Prog.Load (a, ix) );
        ]
        @
        if scalars = [] then []
        else [ (2, oneofl scalars >|= fun s -> Prog.Scalar s) ]
      in
      if depth = 0 then frequency leaf
      else
        frequency
          (leaf
          @ [
              ( 3,
                pair
                  (gen_expr (depth - 1) scalars bound)
                  (gen_expr (depth - 1) scalars bound)
                >>= fun (x, y) ->
                oneofl
                  [
                    Prog.Add (x, y);
                    Prog.Sub (x, y);
                    Prog.Mul (x, y);
                    Prog.Div (x, y);
                  ] );
            ])
    in
    let gen_write scalars bound =
      pair (oneofl [ "c"; "t" ])
        (pair (gen_ix bound) (gen_expr 2 scalars bound))
      >>= fun (a, (ix, e)) ->
      oneofl
        [
          Prog.Store { array = a; index = ix; value = e };
          Prog.Accum { array = a; index = ix; value = e };
        ]
    in
    (* Threads the set of initialized scalars through a statement
       sequence, mirroring [Prog.validate]'s own fold. *)
    let rec gen_stmts ~depth ~fuel bound scalars =
      if fuel = 0 then return ([], scalars)
      else
        gen_stmt ~depth bound scalars >>= fun (s, scalars') ->
        gen_stmts ~depth ~fuel:(fuel - 1) bound scalars' >|= fun (rest, out) ->
        (s :: rest, out)
    and gen_stmt ~depth bound scalars =
      let free =
        List.filter
          (fun v -> not (List.exists (fun (v', _, _) -> v = v') bound))
          [ "i"; "j"; "k" ]
      in
      let write = gen_write scalars bound >|= fun s -> (s, scalars) in
      let set =
        pair (oneofl [ "s0"; "s1" ]) (gen_expr 2 scalars bound)
        >|= fun (name, value) ->
        ( Prog.Set_scalar { name; value },
          if List.mem name scalars then scalars else name :: scalars )
      in
      let acc =
        pair (oneofl scalars) (gen_expr 2 scalars bound) >|= fun (name, value) ->
        (Prog.Acc_scalar { name; value }, scalars)
      in
      let forloop =
        oneofl free >>= fun v ->
        int_range 0 1 >>= fun lo ->
        int_range 1 3 >>= fun extent ->
        gen_stmts ~depth:(depth + 1) ~fuel:2 ((v, lo, lo + extent) :: bound)
          scalars
        >|= fun (body, _) ->
        (Prog.For { var = v; lo; hi = lo + extent; pragmas = []; body }, scalars)
      in
      frequency
        ([ (4, write); (2, set) ]
        @ (if scalars = [] then [] else [ (2, acc) ])
        @ if free = [] || depth >= 3 then [] else [ (4, forloop) ])
    in
    int_range 6 12 >>= fun sa ->
    int_range 6 12 >>= fun sb ->
    int_range 6 12 >>= fun sc ->
    int_range 6 12 >>= fun st ->
    gen_stmts ~depth:0 ~fuel:4 [] [] >>= fun (body, _) ->
    array_size (return sa) gen_value >>= fun da ->
    array_size (return sb) gen_value >|= fun db ->
    let proc =
      {
        Prog.name = "rand";
        params =
          [
            { Prog.name = "a"; size = sa; dir = Prog.In };
            { Prog.name = "b"; size = sb; dir = Prog.In };
            { Prog.name = "c"; size = sc; dir = Prog.Out };
          ];
        locals = [ ("t", st) ];
        (* The trailing store keeps the Out parameter written, as
           [Prog.validate] requires. *)
        body =
          body
          @ [
              Prog.Store
                {
                  array = "c";
                  index = Ix.const 0;
                  value = Prog.Load ("t", Ix.const 0);
                };
            ];
      }
    in
    { proc; inputs = [ ("a", da); ("b", db) ] })

let arb_spec =
  QCheck.make
    ~print:(fun spec -> Format.asprintf "%a" Prog.pp_proc spec.proc)
    gen_spec

let qcheck_random_procs =
  QCheck.Test.make ~name:"compiled = interpreter on random procs" ~count:300
    arb_spec
    (fun spec ->
      Prog.validate spec.proc;
      check_differential ~what:"random proc" spec.proc spec.inputs;
      true)

(* ------------------------------------------------------------------ *)
(* The full compile-option matrix on a programmatic kernel             *)
(* ------------------------------------------------------------------ *)

let options_of_bits bits =
  let bit i = (bits lsr i) land 1 = 1 in
  {
    Cfd_core.Compile.default_options with
    Cfd_core.Compile.factorize = bit 0;
    fuse_pointwise = bit 1;
    decoupled = bit 2;
    sharing = bit 3;
    pipeline_ii = (if bit 4 then Some 2 else Some 1);
    unroll = (if bit 5 then Some 2 else None);
  }

let random_array rand size =
  Array.init size (fun _ -> float_of_int (Random.State.int rand 129 - 64) /. 16.)

let differential_of_result ?debug ~what rand (r : Cfd_core.Compile.result) =
  let proc = r.Cfd_core.Compile.proc in
  let inputs =
    List.filter_map
      (fun (p : Prog.param) ->
        if p.Prog.dir = Prog.In then Some (p.Prog.name, random_array rand p.Prog.size)
        else None)
      proc.Prog.params
  in
  check_differential ?debug ~what proc inputs

let test_option_matrix () =
  let rand = Test_seed.rand () in
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:3 () in
  for bits = 0 to 63 do
    let r = Cfd_core.Compile.compile ~options:(options_of_bits bits) ast in
    differential_of_result
      ~what:(Printf.sprintf "inverse_helmholtz p=3 options=%02x" bits)
      rand r
  done

(* ------------------------------------------------------------------ *)
(* Every kernel under kernels/                                         *)
(* ------------------------------------------------------------------ *)

(* The paper's kernels are p=11: a full 64-point matrix per kernel would
   dominate the suite (the 64-point matrix runs at p=3 above), so each
   kernel runs the factorized baseline, every knob on top of it, the
   all-options point, and one unfactorized probe. Tree-walking the
   unfactorized 6-D contraction costs seconds per run, so the
   interpreter-replay debug leg is limited to the factorized points. *)
let kernel_option_bits = [ 0x01; 0x3f; 0x03; 0x05; 0x09; 0x11; 0x21; 0x00 ]

(* Under [dune runtest] the cwd is the test directory (the kernel
   sources are declared deps, one level up); under [dune exec] from the
   project root they are right here. *)
let kernels_dir () = if Sys.file_exists "../kernels" then "../kernels" else "kernels"

let kernel_files () =
  Sys.readdir (kernels_dir ())
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cfd")
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_kernel file () =
  let rand = Test_seed.rand () in
  let source = read_file (Filename.concat (kernels_dir ()) file) in
  List.iter
    (fun bits ->
      match
        Cfd_core.Compile.compile_source ~options:(options_of_bits bits) source
      with
      | Error m -> Alcotest.failf "%s options=%02x: %s" file bits m
      | Ok r ->
          differential_of_result ~debug:(bits land 0x01 = 1)
            ~what:(Printf.sprintf "%s options=%02x" file bits)
            rand r)
    kernel_option_bits

(* ------------------------------------------------------------------ *)
(* The verifier license                                                *)
(* ------------------------------------------------------------------ *)

let clean_proc =
  {
    Prog.name = "clean";
    params = [ { Prog.name = "x"; size = 4; dir = Prog.Out } ];
    locals = [];
    body =
      [
        Prog.For
          {
            var = "i";
            lo = 0;
            hi = 4;
            pragmas = [];
            body =
              [
                Prog.Store
                  { array = "x"; index = Ix.var "i"; value = Prog.Const 1. };
              ];
          };
      ];
  }

let oob_proc =
  {
    clean_proc with
    Prog.name = "oob";
    body =
      [
        Prog.For
          {
            var = "i";
            lo = 0;
            hi = 5;
            pragmas = [];
            body =
              [
                Prog.Store
                  { array = "x"; index = Ix.var "i"; value = Prog.Const 1. };
              ];
          };
      ];
  }

let test_license_refused_on_bounds () =
  Alcotest.(check bool) "clean proc is licensed unchecked" true
    (Analysis.Verify.execution_mode clean_proc = Compiled.Unchecked);
  Alcotest.(check bool) "out-of-bounds proc falls back to checked" true
    (Analysis.Verify.execution_mode oob_proc = Compiled.Checked);
  (* And the checked fallback agrees with the interpreter that the
     program is wrong. *)
  (match run_compiled ~mode:Compiled.Checked oob_proc [] with
  | Failed _ -> ()
  | Ran _ -> Alcotest.fail "checked run accepted an out-of-bounds store");
  match run_interp oob_proc [] with
  | Failed _ -> ()
  | Ran _ -> Alcotest.fail "interpreter accepted an out-of-bounds store"

let test_debug_env_forces_debug () =
  Unix.putenv "CFD_EXEC_DEBUG" "1";
  let mode = Analysis.Verify.execution_mode clean_proc in
  Unix.putenv "CFD_EXEC_DEBUG" "0";
  Alcotest.(check bool) "CFD_EXEC_DEBUG forces debug mode" true
    (mode = Compiled.Debug);
  Alcotest.(check bool) "CFD_EXEC_DEBUG=0 restores the license" true
    (Analysis.Verify.execution_mode clean_proc = Compiled.Unchecked)

(* ------------------------------------------------------------------ *)
(* Persistent work pool                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_persistent_matches_map () =
  let items = List.init 100 Fun.id in
  let f i = if i mod 9 = 5 then failwith "boom" else (i * i) - 7 in
  let expected = Cfd_core.Pool.map ~jobs:1 f items in
  List.iter
    (fun jobs ->
      Cfd_core.Pool.with_pool ~jobs (fun pool ->
          (* Several batches through one pool: domains are reused, and
             each batch must still come back in input order. *)
          for _ = 1 to 3 do
            let got = Cfd_core.Pool.run pool f items in
            Alcotest.(check bool)
              (Printf.sprintf "pool run at %d jobs = sequential map" jobs)
              true
              (List.map2
                 (fun g e ->
                   match (g, e) with
                   | Ok a, Ok b -> a = b
                   | Error (ge : Cfd_core.Pool.error), Error ee ->
                       ge.Cfd_core.Pool.index = ee.Cfd_core.Pool.index
                   | _ -> false)
                 got expected
              |> List.for_all Fun.id)
          done))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Functional simulation: jobs plumbing                                *)
(* ------------------------------------------------------------------ *)

let small_system () =
  let r =
    Cfd_core.Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:3 ())
  in
  (r, Cfd_core.Compile.build_system ~force_k:2 ~force_m:4 ~n_elements:8 r)

let sim_inputs (sys : Sysgen.System.t) =
  let rand = Test_seed.rand () in
  let names =
    List.map
      (fun (tr : Sysgen.System.transfer) ->
        (tr.Sysgen.System.array, tr.Sysgen.System.bytes / 8))
      sys.Sysgen.System.host.Sysgen.System.per_element_in
  in
  let per_element =
    Array.init 8 (fun _ ->
        List.map (fun (n, size) -> (n, random_array rand size)) names)
  in
  fun e -> per_element.(e)

let test_functional_jobs_rejected () =
  let r, sys = small_system () in
  match
    Sim.Functional.run ~jobs:0 ~system:sys ~proc:r.Cfd_core.Compile.proc
      ~inputs:(sim_inputs sys) ~n:8 ()
  with
  | _ -> Alcotest.fail "expected Error on jobs:0"
  | exception Sim.Functional.Error m ->
      Alcotest.(check bool) "error names jobs" true
        (String.length m >= 4 && String.sub m 0 4 = "jobs")

let test_functional_jobs_equivalent () =
  let r, sys = small_system () in
  let inputs = sim_inputs sys in
  let run jobs =
    Sim.Functional.run ~jobs ~system:sys ~proc:r.Cfd_core.Compile.proc ~inputs
      ~n:7 (* padded tail: 7 elements across two 4-slot blocks *) ()
  in
  let seq = run 1 in
  List.iter
    (fun jobs ->
      let par = run jobs in
      Alcotest.(check int) "same element count" (Array.length seq)
        (Array.length par);
      Array.iteri
        (fun e bindings ->
          if not (buffers_identical bindings par.(e)) then
            Alcotest.failf "element %d differs between jobs:1 and jobs:%d" e
              jobs)
        seq)
    [ 2; 3 ]

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "compiled.differential",
      Test_seed.to_alcotest qcheck_random_procs
      :: case "full option matrix on p=3 inverse Helmholtz"
           test_option_matrix
      :: List.map
           (fun f -> case ("kernel " ^ f) (test_kernel f))
           (kernel_files ()) );
    ( "compiled.license",
      [
        case "bounds diagnostic refuses the unchecked fast path"
          test_license_refused_on_bounds;
        case "CFD_EXEC_DEBUG forces debug cross-checking"
          test_debug_env_forces_debug;
      ] );
    ( "compiled.pool",
      [ case "persistent pool = sequential map" test_pool_persistent_matches_map ] );
    ( "compiled.sim",
      [
        case "jobs:0 rejected" test_functional_jobs_rejected;
        case "jobs:N = jobs:1 on a padded-tail run"
          test_functional_jobs_equivalent;
      ] );
  ]
