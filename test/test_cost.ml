(* Static cost model: count_points unit cases, deterministic and QCheck
   differentials against the exec/sim/memprof instrumentation, bit-exact
   cycle-model equality with Sim.Perf across forced shapes, drift-detector
   mutations (each perturbed observation fires exactly its rule), the
   sweep static pre-filter equivalence, the verify-once span count, and a
   doc-drift check against docs/ANALYSIS.md's rule catalogue. *)

open Cfd_core
module Cost = Analysis.Cost
module D = Analysis.Diagnostic

let case name f = Alcotest.test_case name `Quick f

let kernels_dir () =
  if Sys.file_exists "../kernels" then "../kernels" else "kernels"

let kernel_files () =
  Sys.readdir (kernels_dir ())
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cfd")
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compile_kernel ?(options = Compile.default_options) file =
  match
    Compile.compile_source ~options
      (read_file (Filename.concat (kernels_dir ()) file))
  with
  | Ok r -> r
  | Error m -> Alcotest.failf "%s: %s" file m

let board = Sysgen.Replicate.(default_config.board)
let rules ds = List.sort_uniq compare (List.map (fun d -> d.D.rule) ds)

(* ------------------------------------------------------------------ *)
(* count_points unit cases                                             *)
(* ------------------------------------------------------------------ *)

(* x >= 0, y >= 0, x + y <= 9: 55 points, bounding box 10 x 10 *)
let triangle () =
  let space = Poly.Space.anonymous 2 in
  let x = Poly.Aff.var 2 0 and y = Poly.Aff.var 2 1 in
  Poly.Basic_set.of_constraints space
    Poly.Basic_set.
      [ Ge x; Ge y; Ge Poly.Aff.(sub (sub (const 2 9) x) y) ]

let unbounded () =
  let space = Poly.Space.anonymous 1 in
  Poly.Basic_set.of_constraints space [ Poly.Basic_set.Ge (Poly.Aff.var 1 0) ]

let test_count_box () =
  let c, ds =
    Cost.count_points ~subject:"box"
      (Poly.Basic_set.of_box (Poly.Space.anonymous 2) [ (0, 9); (0, 4) ])
  in
  Alcotest.(check int) "volume" 50 c.Cost.value;
  Alcotest.(check bool) "exact" true c.Cost.exact;
  Alcotest.(check int) "no diagnostics" 0 (List.length ds)

let test_count_enumerated () =
  let c, ds = Cost.count_points ~subject:"triangle" (triangle ()) in
  Alcotest.(check int) "enumerated" 55 c.Cost.value;
  Alcotest.(check bool) "exact" true c.Cost.exact;
  Alcotest.(check int) "no diagnostics" 0 (List.length ds)

let test_count_inexact () =
  let c, ds = Cost.count_points ~budget:10 ~subject:"triangle" (triangle ()) in
  Alcotest.(check int) "falls back to the box volume" 100 c.Cost.value;
  Alcotest.(check bool) "inexact" false c.Cost.exact;
  Alcotest.(check (list string)) "warns" [ "cost-inexact" ] (rules ds);
  match ds with
  | [ { D.severity = D.Warning; witness = Some (D.Count (100, 10)); _ } ] -> ()
  | _ -> Alcotest.fail "expected one warning with a (counted, budget) witness"

let test_count_unbounded () =
  let c, ds = Cost.count_points ~subject:"ray" (unbounded ()) in
  Alcotest.(check int) "no usable count" 0 c.Cost.value;
  Alcotest.(check bool) "inexact" false c.Cost.exact;
  Alcotest.(check (list string)) "errors" [ "cost-unbounded" ] (rules ds);
  Alcotest.(check int) "is an error" 1 (List.length (D.errors ds))

(* ------------------------------------------------------------------ *)
(* Deterministic differential: every kernel, both sharing modes        *)
(* ------------------------------------------------------------------ *)

let check_no_drift ~what (rep : Costing.report) =
  (match rep.Costing.infeasible with
  | Some m -> Alcotest.failf "%s: infeasible: %s" what m
  | None -> ());
  Alcotest.(check bool)
    (what ^ ": statement count is exact")
    true rep.Costing.cost.Cost.statements.Cost.exact;
  Alcotest.(check bool)
    (what ^ ": has probe sites")
    true
    (rep.Costing.cost.Cost.sites <> []);
  match rep.Costing.drift with
  | Some [] -> ()
  | Some ds ->
      Alcotest.failf "%s: %d drift diagnostics, first: %s" what
        (List.length ds)
        (Format.asprintf "%a" D.pp (List.hd ds))
  | None -> Alcotest.fail (what ^ ": the differential did not run")

let test_kernel_differential file () =
  List.iter
    (fun sharing ->
      let options = { Compile.default_options with sharing } in
      let r = compile_kernel ~options file in
      check_no_drift
        ~what:(Printf.sprintf "%s sharing:%b" file sharing)
        (Costing.analyze ~diff:true ~sim_n:3 ~n_elements:32 r))
    [ true; false ]

let qcheck_static_dynamic =
  QCheck.Test.make ~count:10
    ~name:"cost: static = dynamic over (p, sharing, unroll, n)"
    QCheck.(quad (int_range 3 5) bool (int_range 1 2) (int_range 1 6))
    (fun (p, sharing, unroll, sim_n) ->
      let options =
        {
          Compile.default_options with
          sharing;
          unroll = (if unroll = 1 then None else Some unroll);
        }
      in
      let r = Compile.compile ~options (Cfdlang.Ast.inverse_helmholtz ~p ()) in
      let rep = Costing.analyze ~diff:true ~sim_n ~n_elements:64 r in
      match rep.Costing.drift with
      | Some [] -> true
      | Some (d :: _) ->
          QCheck.Test.fail_reportf
            "p:%d sharing:%b unroll:%d n:%d drifted: %a" p sharing unroll
            sim_n D.pp d
      | None -> QCheck.Test.fail_reportf "the differential did not run")

(* ------------------------------------------------------------------ *)
(* Cycle model: bit-identical to Sim.Perf across forced shapes         *)
(* ------------------------------------------------------------------ *)

let test_cycle_model_matches_sim () =
  let r = Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:5 ()) in
  let cost = Costing.static r in
  List.iter
    (fun (force_k, force_m, n_elements) ->
      let sys = Compile.build_system ?force_k ?force_m ~n_elements r in
      let est = Costing.estimate ~board ~system:sys r cost in
      let hw = Sim.Perf.run_hw ~system:sys ~board in
      let what =
        Printf.sprintf "k:%s m:%s n:%d"
          (match force_k with Some k -> string_of_int k | None -> "max")
          (match force_m with Some m -> string_of_int m | None -> "max")
          n_elements
      in
      Alcotest.(check int)
        (what ^ ": total cycles")
        hw.Sim.Perf.total_cycles est.Cost.ce_total_cycles;
      Alcotest.(check int)
        (what ^ ": exec cycles")
        hw.Sim.Perf.exec_cycles est.Cost.ce_exec_cycles;
      Alcotest.(check int)
        (what ^ ": transfer cycles")
        hw.Sim.Perf.transfer_cycles est.Cost.ce_transfer_cycles;
      Alcotest.(check (float 0.))
        (what ^ ": seconds")
        hw.Sim.Perf.total_seconds est.Cost.ce_seconds)
    [
      (None, None, 1000);
      (Some 1, Some 1, 37);
      (Some 1, Some 2, 64);
      (Some 2, Some 4, 1000);
    ]

(* ------------------------------------------------------------------ *)
(* DMA words per PLM set under the round-scheduled host loop           *)
(* ------------------------------------------------------------------ *)

let test_dma_words_per_set () =
  let cost = Costing.static (compile_kernel "mass.cfd") in
  let wi = cost.Cost.words_in and wo = cost.Cost.words_out in
  Alcotest.(check bool) "kernel moves data" true (wi > 0 && wo > 0);
  Alcotest.(check (list (triple int int int)))
    "5 elements over 2 sets: 3/2 split"
    [ (0, 3 * wi, 3 * wo); (1, 2 * wi, 2 * wo) ]
    (Cost.dma_words_per_set cost ~n:5 ~m:2);
  Alcotest.(check (list (triple int int int)))
    "sets receiving no element are omitted"
    [ (0, wi, wo) ]
    (Cost.dma_words_per_set cost ~n:1 ~m:4)

(* ------------------------------------------------------------------ *)
(* Port pressure: overcommit fires at an oversized unroll factor       *)
(* ------------------------------------------------------------------ *)

let overcommitted_diagnostics r =
  (Cost.analyze ~unroll:8 ~program:r.Compile.program ~memory:r.Compile.memory
     ~proc:r.Compile.proc ())
    .Cost.diagnostics

let test_port_overcommit () =
  let r = compile_kernel "inverse_helmholtz.cfd" in
  Alcotest.(check int)
    "the compiled unroll factor fits its port budgets" 0
    (List.length (Costing.static r).Cost.diagnostics);
  let ds = overcommitted_diagnostics r in
  Alcotest.(check (list string))
    "unroll 8 overcommits the PLM ports" [ "cost-port-overcommit" ] (rules ds);
  Alcotest.(check int)
    "overcommit is a warning, not an error" 0
    (List.length (D.errors ds))

(* ------------------------------------------------------------------ *)
(* Drift detector: every perturbed observation fires exactly its rule  *)
(* ------------------------------------------------------------------ *)

let fixture =
  lazy
    (let r = Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:3 ()) in
     let cost = Costing.static r in
     let sys = Compile.build_system ~n_elements:32 r in
     let est = Costing.estimate ~board ~system:sys r cost in
     (r, cost, est))

let drift_n = 2

let correct_sites (cost : Cost.t) =
  List.map
    (fun (s : Cost.site) ->
      ( s.Cost.site_id,
        s.Cost.site_desc,
        s.Cost.site_trips.Cost.value * drift_n,
        s.Cost.site_reads * s.Cost.site_trips.Cost.value * drift_n,
        s.Cost.site_writes * s.Cost.site_trips.Cost.value * drift_n ))
    cost.Cost.sites

let correct_buffers (cost : Cost.t) =
  List.map
    (fun (b : Cost.buffer) ->
      ( b.Cost.buf_name,
        b.Cost.buf_reads.Cost.value * drift_n,
        b.Cost.buf_writes.Cost.value * drift_n,
        b.Cost.buf_peak_pressure ))
    cost.Cost.buffers

let accessed_buffer (cost : Cost.t) =
  (List.find
     (fun (b : Cost.buffer) ->
       b.Cost.buf_reads.Cost.value + b.Cost.buf_writes.Cost.value > 0)
     cost.Cost.buffers)
    .Cost.buf_name

let test_drift_mutations () =
  let _, cost, est = Lazy.force fixture in
  let n = drift_n in
  let base = Cost.no_observation ~n ~m:2 in
  let check what expected obs =
    Alcotest.(check (list string)) what expected (rules (Cost.drift cost obs))
  in
  check "all-None observation is clean" [] base;
  check "exec.statements perturbed" [ "cost-drift-trips" ]
    {
      base with
      Cost.obs_statements = Some ((cost.Cost.statements.Cost.value * n) + 1);
    };
  check "exec.iterations perturbed" [ "cost-drift-trips" ]
    {
      base with
      Cost.obs_iterations = Some ((cost.Cost.iterations.Cost.value * n) + 1);
    };
  check "sim.dma.bytes_in perturbed" [ "cost-drift-dma" ]
    { base with Cost.obs_dma_bytes_in = Some ((8 * cost.Cost.words_in * n) + 8) };
  check "per-set DMA words lost" [ "cost-drift-dma" ]
    { base with Cost.obs_dma_sets = Some [] };
  let sites = correct_sites cost and buffers = correct_buffers cost in
  check "correct per-set DMA words are clean" []
    { base with Cost.obs_dma_sets = Some (Cost.dma_words_per_set cost ~n ~m:2) };
  check "correct per-site observation is clean" []
    { base with Cost.obs_sites = Some sites };
  check "correct per-buffer observation is clean" []
    { base with Cost.obs_buffers = Some buffers };
  let perturb_first f = function [] -> [] | x :: tl -> f x :: tl in
  check "site instance count perturbed" [ "cost-drift-trips" ]
    {
      base with
      Cost.obs_sites =
        Some
          (perturb_first
             (fun (id, d, i, rd, wr) -> (id, d, i + 1, rd, wr))
             sites);
    };
  check "site read count perturbed" [ "cost-drift-access" ]
    {
      base with
      Cost.obs_sites =
        Some
          (perturb_first
             (fun (id, d, i, rd, wr) -> (id, d, i, rd + 1, wr))
             sites);
    };
  check "unknown probe site observed" [ "cost-drift-trips" ]
    { base with Cost.obs_sites = Some (sites @ [ (999, "phantom", 1, 0, 0) ]) };
  let perturb name f =
    List.map (fun ((nm, _, _, _) as t) -> if nm = name then f t else t)
  in
  let accessed = accessed_buffer cost in
  check "buffer read count perturbed" [ "cost-drift-access" ]
    {
      base with
      Cost.obs_buffers =
        Some
          (perturb accessed (fun (nm, rd, wr, pk) -> (nm, rd + 1, wr, pk)) buffers);
    };
  check "buffer peak pressure perturbed" [ "cost-drift-pressure" ]
    {
      base with
      Cost.obs_buffers =
        Some
          (perturb accessed (fun (nm, rd, wr, pk) -> (nm, rd, wr, pk + 1)) buffers);
    };
  check "unknown buffer observed" [ "cost-drift-access" ]
    { base with Cost.obs_buffers = Some (("phantom", 1, 0, 1) :: buffers) };
  check "architecture BRAM claim perturbed" [ "cost-drift-brams" ]
    { base with Cost.obs_total_brams = Some (cost.Cost.brams + 1) };
  Alcotest.(check (list string))
    "matching cycle estimate is clean" []
    (rules
       (Cost.drift cost ~cycle_model:est
          { base with Cost.obs_total_cycles = Some est.Cost.ce_total_cycles }));
  Alcotest.(check (list string))
    "cycle estimate perturbed" [ "cost-drift-cycles" ]
    (rules
       (Cost.drift cost ~cycle_model:est
          {
            base with
            Cost.obs_total_cycles = Some (est.Cost.ce_total_cycles + 1);
          }))

(* ------------------------------------------------------------------ *)
(* Explore: verified exactly once, and the static pre-filter is        *)
(* outcome-preserving with strictly fewer simulations                  *)
(* ------------------------------------------------------------------ *)

let count_spans name =
  List.length
    (List.filter (fun e -> e.Obs.Trace.ev_name = name) (Obs.Trace.events ()))

let test_verify_once () =
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:3 () in
  (* one configuration explicitly asks for the embedded check, which the
     sweep must not let become a second verification *)
  let configurations =
    [
      { Explore.label = "default"; options = Compile.default_options };
      {
        Explore.label = "check-on";
        options = { Compile.default_options with static_check = true };
      };
      {
        Explore.label = "no-sharing";
        options = { Compile.default_options with sharing = false };
      };
    ]
  in
  List.iter
    (fun jobs ->
      Obs.Trace.reset ();
      Obs.Trace.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Obs.Trace.set_enabled false;
          Obs.Trace.reset ())
        (fun () ->
          let outcomes =
            Explore.sweep ~jobs ~configurations ~n_elements:256 ast
          in
          Alcotest.(check int)
            (Printf.sprintf "jobs:%d: every configuration reported" jobs)
            3 (List.length outcomes);
          Alcotest.(check int)
            (Printf.sprintf
               "jobs:%d: exactly one verifier pass per configuration" jobs)
            3
            (count_spans "verify.structure")))
    [ 1; 4 ]

let sweep_with_counters ~jobs ~prefilter ~n_elements ast =
  Poly.Memo.clear_all ();
  let runs = Obs.Metrics.counter "sim.perf.runs" in
  let pruned = Obs.Metrics.counter "explore.pruned" in
  let r0 = Obs.Metrics.counter_value runs in
  let p0 = Obs.Metrics.counter_value pruned in
  let outcomes = Explore.sweep ~jobs ~prefilter ~n_elements ast in
  ( outcomes,
    Obs.Metrics.counter_value runs - r0,
    Obs.Metrics.counter_value pruned - p0 )

let test_prefilter_equivalence () =
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:7 () in
  let n_elements = 1024 in
  let full, full_sims, full_pruned =
    sweep_with_counters ~jobs:1 ~prefilter:false ~n_elements ast
  in
  let filt, filt_sims, filt_pruned =
    sweep_with_counters ~jobs:1 ~prefilter:true ~n_elements ast
  in
  Alcotest.(check int) "unfiltered sweep prunes nothing" 0 full_pruned;
  Alcotest.(check bool)
    "pre-filter pruned at least one configuration" true (filt_pruned > 0);
  Alcotest.(check bool)
    (Printf.sprintf "strictly fewer simulations (%d < %d)" filt_sims full_sims)
    true
    (filt_sims < full_sims);
  Alcotest.(check bool)
    "identical outcomes (the static price matches the simulator bit for bit)"
    true (full = filt);
  let labels os =
    List.map (fun o -> o.Explore.configuration.Explore.label) (Explore.pareto os)
  in
  Alcotest.(check (list string))
    "identical Pareto frontier" (labels full) (labels filt);
  let filt4, _, filt4_pruned =
    sweep_with_counters ~jobs:4 ~prefilter:true ~n_elements ast
  in
  Alcotest.(check bool) "jobs:1 = jobs:4 under the pre-filter" true
    (filt = filt4);
  Alcotest.(check int) "jobs:4 prunes the same set" filt_pruned filt4_pruned

(* ------------------------------------------------------------------ *)
(* Doc drift: docs/ANALYSIS.md's cost-* catalogue = the emitted rules  *)
(* ------------------------------------------------------------------ *)

let documented_cost_rules () =
  let path =
    if Sys.file_exists "../docs/ANALYSIS.md" then "../docs/ANALYSIS.md"
    else "docs/ANALYSIS.md"
  in
  let text = read_file path in
  let re = Str.regexp "cost-[a-z]+\\(-[a-z]+\\)*" in
  let rec loop pos acc =
    match Str.search_forward re text pos with
    | exception Not_found -> acc
    | i ->
        let m = Str.matched_string text in
        loop (i + String.length m) (m :: acc)
  in
  loop 0 []
  (* the bare family prefix appears in prose as "cost-drift-*"; it is
     never a rule id *)
  |> List.filter (fun m -> m <> "cost-drift")
  |> List.sort_uniq compare

let emitted_cost_rules () =
  let r, cost, est = Lazy.force fixture in
  let acc = ref [] in
  let collect ds = List.iter (fun d -> acc := d.D.rule :: !acc) ds in
  collect (snd (Cost.count_points ~subject:"ray" (unbounded ())));
  collect (snd (Cost.count_points ~budget:10 ~subject:"triangle" (triangle ())));
  collect (overcommitted_diagnostics r);
  let n = drift_n in
  let base = Cost.no_observation ~n ~m:2 in
  collect
    (Cost.drift cost
       {
         base with
         Cost.obs_statements = Some ((cost.Cost.statements.Cost.value * n) + 1);
       });
  collect
    (Cost.drift cost
       {
         base with
         Cost.obs_dma_bytes_in = Some ((8 * cost.Cost.words_in * n) + 8);
       });
  collect
    (Cost.drift cost { base with Cost.obs_buffers = Some [ ("phantom", 1, 0, 1) ] });
  let accessed = accessed_buffer cost in
  collect
    (Cost.drift cost
       {
         base with
         Cost.obs_buffers =
           Some
             (List.map
                (fun ((nm, rd, wr, pk) as t) ->
                  if nm = accessed then (nm, rd, wr, pk + 1) else t)
                (correct_buffers cost));
       });
  collect
    (Cost.drift cost ~cycle_model:est
       { base with Cost.obs_total_cycles = Some (est.Cost.ce_total_cycles + 1) });
  collect
    (Cost.drift cost { base with Cost.obs_total_brams = Some (cost.Cost.brams + 1) });
  List.sort_uniq compare !acc

let test_doc_drift () =
  Alcotest.(check (list string))
    "every documented cost-* rule is emitted, and vice versa"
    (emitted_cost_rules ()) (documented_cost_rules ())

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "cost.count",
      [
        case "a product of intervals is its box volume" test_count_box;
        case "a bounded non-box domain is enumerated" test_count_enumerated;
        case "over budget falls back to an inexact bound" test_count_inexact;
        case "an unbounded domain is a cost-unbounded error"
          test_count_unbounded;
      ] );
    ( "cost.differential",
      List.map
        (fun f ->
          case
            ("static = dynamic: " ^ f ^ " (both sharing modes)")
            (test_kernel_differential f))
        (kernel_files ())
      @ [ Test_seed.to_alcotest qcheck_static_dynamic ] );
    ( "cost.model",
      [
        case "cycle model = Sim.Perf across forced shapes"
          test_cycle_model_matches_sim;
        case "DMA words per PLM set" test_dma_words_per_set;
        case "port overcommit at unroll 8" test_port_overcommit;
      ] );
    ("cost.drift", [ case "every mutation fires its rule" test_drift_mutations ]);
    ( "cost.explore",
      [
        case "every configuration is verified exactly once" test_verify_once;
        case "static pre-filter preserves outcomes with fewer simulations"
          test_prefilter_equivalence;
      ] );
    ( "cost.docs",
      [ case "ANALYSIS.md rule catalogue matches the analyzer" test_doc_drift ]
    );
  ]
