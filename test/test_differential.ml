(* Differential and property-based tests for the exploration engine and
   the polyhedral memoization layer.

   Three families:
   - sweep determinism: [Explore.sweep ~jobs:1] and [~jobs:4] must produce
     identical outcome lists (structurally and as rendered text), on the
     standard configurations and on randomized option sets;
   - memo correctness: memoized projection / emptiness / composition must
     equal a from-scratch recomputation after [Poly.Memo.clear_all], and
     on unit-coefficient sets must match exact point enumeration;
   - fault isolation: a configuration that raises inside its
     compile/evaluate pipeline becomes [feasible = false] with a
     diagnostic and never aborts the rest of the sweep.

   All randomized tests draw from the fixed suite seed (see
   {!Test_seed}). *)

open Cfd_core

let case name f = Alcotest.test_case name `Quick f

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Random compile options: 6 bits spanning the full knob matrix.      *)
(* ------------------------------------------------------------------ *)

let options_of_bits bits =
  let bit i = (bits lsr i) land 1 = 1 in
  {
    Compile.default_options with
    Compile.factorize = bit 0;
    fuse_pointwise = bit 1;
    decoupled = bit 2;
    sharing = bit 3;
    pipeline_ii = (if bit 4 then Some 2 else Some 1);
    unroll = (if bit 5 then Some 2 else None);
  }

let configurations_of_bits bitsl =
  List.mapi
    (fun i bits ->
      {
        Explore.label = Printf.sprintf "cfg%d(bits=%02x)" i bits;
        options = options_of_bits bits;
      })
    bitsl

(* ------------------------------------------------------------------ *)
(* Work pool                                                          *)
(* ------------------------------------------------------------------ *)

let test_pool_map_ordering () =
  let items = List.init 100 Fun.id in
  let f i = if i mod 7 = 3 then failwith (Printf.sprintf "boom %d" i) else i * i in
  List.iter
    (fun jobs ->
      let results = Pool.map ~jobs f items in
      Alcotest.(check int) "one result per input" 100 (List.length results);
      List.iteri
        (fun i r ->
          match r with
          | Ok v ->
              Alcotest.(check bool) "value in input order" true
                (v = i * i && i mod 7 <> 3)
          | Error e ->
              Alcotest.(check int) "error carries its input index" i
                e.Pool.index;
              Alcotest.(check bool) "only raising items error" true
                (i mod 7 = 3);
              Alcotest.(check bool) "message captured" true
                (contains e.Pool.message "boom"))
        results)
    [ 1; 3; 16 ]

let test_pool_jobs_equivalent () =
  let items = List.init 257 (fun i -> i - 128) in
  let f i = (i * i * i) - (5 * i) in
  let sequential = Pool.map ~jobs:1 f items in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs:%d = jobs:1" jobs)
        true
        (Pool.map ~jobs f items = sequential))
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Sweep determinism                                                  *)
(* ------------------------------------------------------------------ *)

let show_outcome o = Format.asprintf "%a" Explore.pp_outcome o

let test_sweep_jobs_identical () =
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:7 () in
  let s1 = Explore.sweep ~jobs:1 ~n_elements:4096 ast in
  let s4 = Explore.sweep ~jobs:4 ~n_elements:4096 ast in
  Alcotest.(check (list string))
    "rendered outcomes identical"
    (List.map show_outcome s1) (List.map show_outcome s4);
  Alcotest.(check bool) "structurally identical" true (s1 = s4);
  Alcotest.(check bool) "at least one feasible outcome" true
    (List.exists (fun o -> o.Explore.feasible) s1)

let qcheck_sweep_differential =
  QCheck.Test.make ~name:"sweep jobs:1 = jobs:4 on random configurations"
    ~count:6
    QCheck.(
      pair (int_range 3 5) (list_of_size Gen.(int_range 1 5) (int_range 0 63)))
    (fun (p, bitsl) ->
      let configurations = configurations_of_bits bitsl in
      let ast = Cfdlang.Ast.inverse_helmholtz ~p () in
      let s1 = Explore.sweep ~jobs:1 ~configurations ~n_elements:512 ast in
      let s4 = Explore.sweep ~jobs:4 ~configurations ~n_elements:512 ast in
      s1 = s4 && List.map show_outcome s1 = List.map show_outcome s4)

(* ------------------------------------------------------------------ *)
(* Feasible configurations verify against the reference semantics      *)
(* ------------------------------------------------------------------ *)

let test_sweep_feasible_verify () =
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:5 () in
  let outcomes = Explore.sweep ~jobs:2 ~n_elements:1024 ast in
  Alcotest.(check bool) "at least one feasible" true
    (List.exists (fun o -> o.Explore.feasible) outcomes);
  List.iter
    (fun o ->
      if o.Explore.feasible then begin
        let r =
          Compile.compile ~options:o.Explore.configuration.Explore.options ast
        in
        Alcotest.(check bool)
          (o.Explore.configuration.Explore.label ^ " verifies")
          true (Compile.verify r)
      end)
    outcomes

let qcheck_random_options_verify =
  QCheck.Test.make
    ~name:"random option combinations compile and verify" ~count:10
    QCheck.(int_range 0 63)
    (fun bits ->
      let ast = Cfdlang.Ast.inverse_helmholtz ~p:4 () in
      let r = Compile.compile ~options:(options_of_bits bits) ast in
      Compile.verify r)

(* ------------------------------------------------------------------ *)
(* Poly memoization: random affine conjunctions                        *)
(* ------------------------------------------------------------------ *)

type set_spec = {
  arity : int;
  box : (int * int) list;
  extras : (bool * int array * int) list;  (** (is_eq, coeffs, const) *)
  drop : int;  (** variable position to project out *)
}

let space_of_arity ?(name = "S") n =
  Poly.Space.make name (List.init n (Printf.sprintf "i%d"))

let build_spec spec =
  let space = space_of_arity spec.arity in
  List.fold_left
    (fun t (is_eq, coeffs, const) ->
      let e = Poly.Aff.make coeffs const in
      Poly.Basic_set.add_constraint t
        (if is_eq then Poly.Basic_set.Eq e else Poly.Basic_set.Ge e))
    (Poly.Basic_set.of_box space spec.box)
    spec.extras

let gen_spec ~max_coeff =
  QCheck.Gen.(
    int_range 2 3 >>= fun arity ->
    list_size (return arity)
      ( int_range (-2) 0 >>= fun lo ->
        int_range 0 4 >>= fun w -> return (lo, lo + w) )
    >>= fun box ->
    list_size (int_range 0 3)
      ( bool >>= fun is_eq ->
        array_size (return arity) (int_range (-max_coeff) max_coeff)
        >>= fun coeffs ->
        int_range (-3) 3 >>= fun const -> return (is_eq, coeffs, const) )
    >>= fun extras ->
    int_range 0 (arity - 1) >>= fun drop -> return { arity; box; extras; drop })

let arb_spec ~max_coeff =
  QCheck.make
    ~print:(fun spec ->
      Format.asprintf "project out i%d of %a" spec.drop Poly.Basic_set.pp
        (build_spec spec))
    (gen_spec ~max_coeff)

let project_spec spec t =
  let keep =
    List.filter (fun v -> v <> spec.drop) (List.init spec.arity Fun.id)
  in
  let sp' = space_of_arity ~name:"P" (spec.arity - 1) in
  (keep, Poly.Basic_set.project_out t [ spec.drop ] sp')

(* Memoized results must be indistinguishable from a cold recomputation:
   run the same pipeline warm (cache populated), warm again (served from
   cache), and cold (after [clear_all]); all three must agree. *)
let qcheck_memo_matches_fresh =
  QCheck.Test.make
    ~name:"memoized projection/emptiness/bounds = fresh computation"
    ~count:100 (arb_spec ~max_coeff:2)
    (fun spec ->
      let run () =
        let t = build_spec spec in
        let _, proj = project_spec spec t in
        let elim = Poly.Basic_set.eliminate t spec.drop in
        ( Poly.Basic_set.is_empty t,
          Poly.Basic_set.constraints proj,
          Poly.Basic_set.constraints elim,
          Poly.Basic_set.var_bounds t 0 )
      in
      let warm = run () in
      let warm2 = run () in
      Poly.Memo.clear_all ();
      let cold = run () in
      warm = warm2 && warm2 = cold)

(* On unit-coefficient conjunctions FM projection is integer-exact, so the
   memoized projection must enumerate to exactly the pointwise projection
   of the original set. *)
let qcheck_memo_projection_exact =
  QCheck.Test.make
    ~name:"memoized projection matches exact point enumeration" ~count:200
    (arb_spec ~max_coeff:1)
    (fun spec ->
      let t = build_spec spec in
      let keep, proj = project_spec spec t in
      let points = Poly.Basic_set.enumerate t in
      let project_point p = Array.of_list (List.map (fun v -> p.(v)) keep) in
      let expected =
        List.sort_uniq compare (List.map project_point points)
      in
      let got = List.sort compare (Poly.Basic_set.enumerate proj) in
      expected = got
      && Poly.Basic_set.is_empty_exact t = (points = []))

let qcheck_compose_memo_matches_pairs =
  QCheck.Test.make
    ~name:"memoized Rel.compose matches explicit pair composition" ~count:50
    QCheck.(
      pair
        (small_list (pair (int_range (-3) 3) (int_range (-3) 3)))
        (small_list (pair (int_range (-3) 3) (int_range (-3) 3))))
    (fun (p1, p2) ->
      let pt x = [| x |] in
      let pairs l = List.map (fun (a, b) -> (pt a, pt b)) l in
      let a = space_of_arity ~name:"A" 1
      and b = space_of_arity ~name:"B" 1
      and c = space_of_arity ~name:"C" 1 in
      let r1 = Poly.Rel.of_pairs a b (pairs p1)
      and r2 = Poly.Rel.of_pairs b c (pairs p2) in
      let expected =
        List.sort_uniq compare
          (List.concat_map
             (fun (x, y) ->
               List.filter_map
                 (fun (y', z) -> if y = y' then Some (pt x, pt z) else None)
                 p2)
             p1)
      in
      let enum r = List.sort compare (Poly.Rel.enumerate r) in
      let warm = enum (Poly.Rel.compose r2 r1) in
      Poly.Memo.clear_all ();
      let cold = enum (Poly.Rel.compose r2 r1) in
      warm = expected && cold = expected)

let test_memo_stats () =
  Poly.Memo.clear_all ();
  Poly.Stats.reset ();
  let space = space_of_arity 2 in
  let t = Poly.Basic_set.of_box space [ (0, 3); (0, 3) ] in
  let sp' = space_of_arity ~name:"P" 1 in
  let p1 = Poly.Basic_set.project_out t [ 1 ] sp' in
  let p2 = Poly.Basic_set.project_out t [ 1 ] sp' in
  Alcotest.(check bool) "repeat projection interned to the same set" true
    (Poly.Basic_set.uid p1 = Poly.Basic_set.uid p2);
  let c =
    List.find
      (fun c -> Poly.Stats.name c = "poly.project_out")
      (Poly.Stats.all ())
  in
  Alcotest.(check bool) "second projection is a cache hit" true
    (Poly.Stats.hits c >= 1);
  Alcotest.(check bool) "first projection was a miss" true
    (Poly.Stats.misses c >= 1);
  Poly.Stats.reset ();
  Alcotest.(check int) "reset zeroes hits" 0 (Poly.Stats.hits c);
  Alcotest.(check int) "reset zeroes misses" 0 (Poly.Stats.misses c)

(* ------------------------------------------------------------------ *)
(* Fault isolation: one crashing configuration never aborts the sweep  *)
(* ------------------------------------------------------------------ *)

let test_sweep_captures_exceptions () =
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:5 () in
  let bad label =
    {
      Explore.label;
      options = { Compile.default_options with Compile.unroll = Some 0 };
    }
  in
  let good = { Explore.label = "good"; options = Compile.default_options } in
  List.iter
    (fun jobs ->
      let outcomes =
        Explore.sweep ~jobs
          ~configurations:[ bad "bad A"; good; bad "bad B" ]
          ~n_elements:1024 ast
      in
      match outcomes with
      | [ o1; o2; o3 ] ->
          Alcotest.(check bool) "bad A infeasible" false o1.Explore.feasible;
          (match o1.Explore.diagnostic with
          | Some msg ->
              Alcotest.(check bool) "diagnostic names the bad option" true
                (contains msg "unroll")
          | None -> Alcotest.fail "bad A has no diagnostic");
          Alcotest.(check bool) "good still feasible" true o2.Explore.feasible;
          Alcotest.(check (option string)) "feasible has no diagnostic" None
            o2.Explore.diagnostic;
          Alcotest.(check bool) "bad B infeasible" false o3.Explore.feasible;
          Alcotest.(check bool) "bad B has a diagnostic" true
            (o3.Explore.diagnostic <> None)
      | l -> Alcotest.failf "expected 3 outcomes, got %d" (List.length l))
    [ 1; 4 ]

let test_sweep_all_failures () =
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:3 () in
  let bad i =
    {
      Explore.label = Printf.sprintf "bad %d" i;
      options = { Compile.default_options with Compile.unroll = Some (-i) };
    }
  in
  let outcomes =
    Explore.sweep ~jobs:2
      ~configurations:(List.init 4 bad)
      ~n_elements:256 ast
  in
  Alcotest.(check int) "all outcomes reported" 4 (List.length outcomes);
  Alcotest.(check bool) "every outcome infeasible with a diagnostic" true
    (List.for_all
       (fun o -> (not o.Explore.feasible) && o.Explore.diagnostic <> None)
       outcomes)

let suite =
  [
    ( "differential.pool",
      [
        case "map: ordering and per-task error capture" test_pool_map_ordering;
        case "map: jobs>1 equals jobs:1" test_pool_jobs_equivalent;
      ] );
    ( "differential.sweep",
      [
        case "standard configurations: jobs:1 = jobs:4"
          test_sweep_jobs_identical;
        Test_seed.to_alcotest qcheck_sweep_differential;
        case "feasible outcomes verify" test_sweep_feasible_verify;
        Test_seed.to_alcotest qcheck_random_options_verify;
        case "exception in one configuration is isolated"
          test_sweep_captures_exceptions;
        case "a sweep of only failing configurations returns"
          test_sweep_all_failures;
      ] );
    ( "differential.poly_memo",
      [
        Test_seed.to_alcotest qcheck_memo_matches_fresh;
        Test_seed.to_alcotest qcheck_memo_projection_exact;
        Test_seed.to_alcotest qcheck_compose_memo_matches_pairs;
        case "stats counters and reset" test_memo_stats;
      ] );
  ]
