(* Tests for the extension features: the SEM operator library, the DSE
   sweep/Pareto API, transfer-compute overlap, and multi-FPGA scaling. *)

open Tensor

let case name f = Alcotest.test_case name `Quick f

(* ---------- operator library ---------- *)

let compile_op program =
  Cfd_core.Compile.compile ~options:Cfd_core.Compile.default_options program

let test_operators_all_verify () =
  List.iter
    (fun (name, program) ->
      let r = compile_op program in
      Alcotest.(check bool) (name ^ " verifies") true
        (Cfd_core.Compile.verify ~seed:5 r))
    (Cfdlang.Operators.all ~p:4 ())

let test_gradient_reference () =
  let p = 4 in
  let checked = Cfdlang.Check.check_exn (Cfdlang.Operators.gradient ~p ()) in
  let dm = Dense.random ~seed:1 (Shape.create [ p; p ]) in
  let u = Dense.random ~seed:2 (Shape.cube 3 p) in
  let outs = Cfdlang.Eval.run checked [ ("Dm", dm); ("u", u) ] in
  let gx = List.assoc "gx" outs
  and gy = List.assoc "gy" outs
  and gz = List.assoc "gz" outs in
  (* independent references with documented layouts *)
  let ref_gx =
    Dense.init (Shape.cube 3 p) (function
      | [ i; j; k ] ->
          let acc = ref 0.0 in
          for l = 0 to p - 1 do
            acc := !acc +. (Dense.get dm [ i; l ] *. Dense.get u [ l; j; k ])
          done;
          !acc
      | _ -> assert false)
  in
  let ref_gy =
    (* gy[j,i,k] = sum_m Dm[j,m] u[i,m,k] *)
    Dense.init (Shape.cube 3 p) (function
      | [ j; i; k ] ->
          let acc = ref 0.0 in
          for m = 0 to p - 1 do
            acc := !acc +. (Dense.get dm [ j; m ] *. Dense.get u [ i; m; k ])
          done;
          !acc
      | _ -> assert false)
  in
  let ref_gz =
    (* gz[k,i,j] = sum_n Dm[k,n] u[i,j,n] *)
    Dense.init (Shape.cube 3 p) (function
      | [ k; i; j ] ->
          let acc = ref 0.0 in
          for n = 0 to p - 1 do
            acc := !acc +. (Dense.get dm [ k; n ] *. Dense.get u [ i; j; n ])
          done;
          !acc
      | _ -> assert false)
  in
  Alcotest.(check bool) "gx" true (Dense.equal ~tol:1e-9 gx ref_gx);
  Alcotest.(check bool) "gy" true (Dense.equal ~tol:1e-9 gy ref_gy);
  Alcotest.(check bool) "gz" true (Dense.equal ~tol:1e-9 gz ref_gz)

let test_laplacian_reference () =
  let p = 3 in
  let checked = Cfdlang.Check.check_exn (Cfdlang.Operators.laplacian ~p ()) in
  let a = Dense.random ~seed:3 (Shape.create [ p; p ]) in
  let u = Dense.random ~seed:4 (Shape.cube 3 p) in
  let outs =
    Cfdlang.Eval.run checked [ ("A", a); ("Id", Dense.identity p); ("u", u) ]
  in
  let lap = List.assoc "lap" outs in
  let reference =
    Dense.init (Shape.cube 3 p) (function
      | [ i; j; k ] ->
          let acc = ref 0.0 in
          for l = 0 to p - 1 do
            acc :=
              !acc
              +. (Dense.get a [ i; l ] *. Dense.get u [ l; j; k ])
              +. (Dense.get a [ j; l ] *. Dense.get u [ i; l; k ])
              +. (Dense.get a [ k; l ] *. Dense.get u [ i; j; l ])
          done;
          !acc
      | _ -> assert false)
  in
  Alcotest.(check bool) "laplacian" true (Dense.equal ~tol:1e-8 lap reference)

let test_laplacian_identity_stiffness () =
  (* with A = I the collocation Laplacian is 3u *)
  let p = 3 in
  let checked = Cfdlang.Check.check_exn (Cfdlang.Operators.laplacian ~p ()) in
  let u = Dense.random ~seed:5 (Shape.cube 3 p) in
  let outs =
    Cfdlang.Eval.run checked
      [ ("A", Dense.identity p); ("Id", Dense.identity p); ("u", u) ]
  in
  Alcotest.(check bool) "3u" true
    (Dense.equal ~tol:1e-9 (List.assoc "lap" outs) (Ops.scale 3.0 u))

let test_gradient_multi_output_system () =
  (* multi-output kernels flow through system generation and transfers *)
  let r = compile_op (Cfdlang.Operators.gradient ~p:4 ()) in
  let sys = Cfd_core.Compile.build_system ~force_k:2 ~n_elements:8 r in
  Sysgen.System.validate sys;
  Alcotest.(check int) "three output transfers" 3
    (List.length sys.Sysgen.System.host.Sysgen.System.per_element_out)

let test_gradient_through_full_system () =
  (* multi-output kernel through the full-system functional simulation:
     validates multi-transfer output DMA with k=2 steering *)
  let p = 4 in
  let r = compile_op (Cfdlang.Operators.gradient ~p ()) in
  let sys = Cfd_core.Compile.build_system ~force_k:2 ~force_m:4 ~n_elements:6 r in
  Sysgen.System.validate sys;
  let dm = Dense.random ~seed:31 (Shape.create [ p; p ]) in
  let us = Array.init 6 (fun e -> Dense.random ~seed:(40 + e) (Shape.cube 3 p)) in
  let inputs e = [ ("Dm", Dense.to_array dm); ("u", Dense.to_array us.(e)) ] in
  let outs =
    Sim.Functional.run ~system:sys ~proc:r.Cfd_core.Compile.proc ~inputs ~n:6 ()
  in
  Array.iteri
    (fun e bindings ->
      let checked = r.Cfd_core.Compile.checked in
      let expected =
        Cfdlang.Eval.run checked [ ("Dm", dm); ("u", us.(e)) ]
      in
      List.iter
        (fun (name, want) ->
          let got =
            Dense.of_array (Shape.cube 3 p) (List.assoc name bindings)
          in
          if not (Dense.equal ~tol:1e-9 got want) then
            Alcotest.failf "element %d output %s wrong" e name)
        expected)
    outs

let test_autoschedule_operator_suite () =
  List.iter
    (fun (name, program) ->
      let checked = Cfdlang.Check.check_exn program in
      let kernel =
        Tir.Transform.optimize ~factorize_contractions:true
          (Tir.Builder.build ~name checked)
      in
      let flow = Lower.Flow.of_kernel ~name kernel in
      let _, sched = Lower.Autoschedule.schedule flow in
      Alcotest.(check bool) (name ^ " legal") true (Lower.Schedule.legal flow sched))
    (Cfdlang.Operators.all ~p:3 ())

let qcheck_partition_always_verifies =
  QCheck.Test.make ~name:"block partitioning preserves semantics" ~count:12
    QCheck.(pair (int_range 0 2) (int_range 2 4))
    (fun (dim, banks) ->
      let p = 4 in
      let checked = Cfdlang.Check.check_exn (Cfdlang.Ast.inverse_helmholtz ~p ()) in
      let program =
        Lower.Flow.of_kernel ~name:"helm" (Tir.Builder.build ~name:"helm" checked)
      in
      let program = Lower.Layout.block_partition program "t" ~dim ~banks in
      let schedule = Lower.Reschedule.compute program in
      if not (Lower.Schedule.legal program schedule) then false
      else begin
        let proc =
          Loopir.Scalarize.optimize (Lower.Codegen.generate program schedule)
        in
        let inputs = Helmholtz.make_inputs ~seed:(dim + banks) p in
        let results =
          Loopir.Interp.run_fresh proc
            ~inputs:
              [
                ("S", Dense.to_array inputs.Helmholtz.s);
                ("D", Dense.to_array inputs.Helmholtz.d);
                ("u", Dense.to_array inputs.Helmholtz.u);
              ]
        in
        let got = Dense.of_array (Shape.cube 3 p) (List.assoc "v" results) in
        Dense.equal ~tol:1e-8 got (Helmholtz.direct inputs)
      end)

let test_operator_factorization_benefit () =
  (* laplacian's TTM terms factorize: latency must drop substantially *)
  let direct_opts =
    { Cfd_core.Compile.default_options with Cfd_core.Compile.factorize = false }
  in
  let lap = Cfdlang.Operators.laplacian ~p:8 () in
  let fact = Cfd_core.Compile.compile lap in
  let direct = Cfd_core.Compile.compile ~options:direct_opts lap in
  Alcotest.(check bool) "factorization helps laplacian" true
    (fact.Cfd_core.Compile.hls.Hls.Model.latency_cycles * 3
    < direct.Cfd_core.Compile.hls.Hls.Model.latency_cycles)

(* ---------- DSE sweep & Pareto ---------- *)

let test_sweep_outcomes () =
  let outcomes =
    Cfd_core.Explore.sweep ~n_elements:1024 (Cfdlang.Ast.inverse_helmholtz ~p:11 ())
  in
  Alcotest.(check int) "five configurations" 5 (List.length outcomes);
  let by_label l =
    List.find
      (fun (o : Cfd_core.Explore.outcome) ->
        o.Cfd_core.Explore.configuration.Cfd_core.Explore.label = l)
      outcomes
  in
  let shared = by_label "factorized + decoupled + sharing" in
  let unshared = by_label "factorized + decoupled, no sharing" in
  Alcotest.(check int) "sharing reaches 16" 16 shared.Cfd_core.Explore.max_replicas;
  Alcotest.(check int) "no sharing caps at 8" 8 unshared.Cfd_core.Explore.max_replicas;
  Alcotest.(check bool) "sharing faster" true
    (shared.Cfd_core.Explore.seconds < unshared.Cfd_core.Explore.seconds);
  let unroll2 = by_label "factorized + sharing + unroll 2" in
  Alcotest.(check bool) "unroll 2 fastest" true
    (unroll2.Cfd_core.Explore.seconds < shared.Cfd_core.Explore.seconds)

let test_pareto_no_dominated () =
  let outcomes =
    Cfd_core.Explore.sweep ~n_elements:1024 (Cfdlang.Ast.inverse_helmholtz ~p:11 ())
  in
  let front = Cfd_core.Explore.pareto outcomes in
  Alcotest.(check bool) "non-empty" true (front <> []);
  (* the direct-contraction config is dominated by the factorized one
     (same class of resources, far slower): it must not be on the front *)
  Alcotest.(check bool) "direct kernel dominated" true
    (not
       (List.exists
          (fun (o : Cfd_core.Explore.outcome) ->
            o.Cfd_core.Explore.configuration.Cfd_core.Explore.label
            = "direct contraction + sharing")
          front));
  (* pairwise non-domination inside the front *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a != b then
            Alcotest.(check bool) "front is non-dominated" false
              (a.Cfd_core.Explore.resources.Fpga_platform.Resource.lut
               <= b.Cfd_core.Explore.resources.Fpga_platform.Resource.lut
              && a.Cfd_core.Explore.resources.Fpga_platform.Resource.bram18
                 <= b.Cfd_core.Explore.resources.Fpga_platform.Resource.bram18
              && a.Cfd_core.Explore.seconds < b.Cfd_core.Explore.seconds))
        front)
    front

let test_emit_all () =
  let r =
    Cfd_core.Compile.compile
      ~options:
        { Cfd_core.Compile.default_options with Cfd_core.Compile.kernel_name = "helm" }
      (Cfdlang.Ast.inverse_helmholtz ~p:4 ())
  in
  let sys = Cfd_core.Compile.build_system ~force_k:2 ~n_elements:16 r in
  let artifacts = Cfd_core.Compile.emit_all r sys in
  Alcotest.(check int) "nine artifacts" 9 (List.length artifacts);
  List.iter
    (fun (name, contents) ->
      Alcotest.(check bool) (name ^ " non-empty") true (String.length contents > 50))
    artifacts;
  Alcotest.(check bool) "kernel C present" true
    (List.mem_assoc "helm.c" artifacts)

let test_sweep_small_board_infeasible () =
  let config =
    {
      Sysgen.Replicate.default_config with
      Sysgen.Replicate.board = Fpga_platform.Board.small_test_board;
      interface_reserve = Fpga_platform.Resource.zero;
    }
  in
  let outcomes =
    Cfd_core.Explore.sweep ~config ~n_elements:16
      (Cfdlang.Ast.inverse_helmholtz ~p:11 ())
  in
  (* the 15-DSP kernel doesn't fit 64 DSPs more than a few times; at
     least the direct 37-DSP variant plus its PLMs must overrun BRAM *)
  Alcotest.(check bool) "reports rather than raises" true
    (List.length outcomes = 5)

(* ---------- transfer overlap (future work) ---------- *)

let board = Sysgen.Replicate.default_config.Sysgen.Replicate.board

let test_overlap_helps_batching () =
  let r = Cfd_core.Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:11 ()) in
  let sys = Cfd_core.Compile.build_system ~force_k:8 ~force_m:16 ~n_elements:4096 r in
  let plain = Sim.Perf.run_hw ~system:sys ~board in
  let overlapped = Sim.Perf.run_hw_overlapped ~system:sys ~board in
  Alcotest.(check bool) "overlap strictly faster" true
    (overlapped.Sim.Perf.total_seconds < plain.Sim.Perf.total_seconds);
  (* compute-bound kernel: overlap should hide nearly all transfer time *)
  let hidden =
    plain.Sim.Perf.total_seconds -. overlapped.Sim.Perf.total_seconds
  in
  let transfers =
    float_of_int plain.Sim.Perf.transfer_cycles
    /. (float_of_int board.Fpga_platform.Board.fmax_mhz *. 1e6)
  in
  Alcotest.(check bool) "hides most transfer time" true
    (hidden > 0.8 *. transfers)

let test_overlap_requires_double_buffering () =
  let r = Cfd_core.Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:11 ()) in
  let sys = Cfd_core.Compile.build_system ~force_k:8 ~force_m:8 ~n_elements:64 r in
  match Sim.Perf.run_hw_overlapped ~system:sys ~board with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---------- cluster scaling ---------- *)

let cluster_nodes r n_nodes total_elements =
  List.map
    (fun share ->
      ( Fpga_platform.Board.zcu106,
        Cfd_core.Compile.build_system ~n_elements:share r ))
    (Sim.Cluster.partition_elements ~n:total_elements ~parts:n_nodes)

let test_cluster_single_node_degenerates () =
  let r = Cfd_core.Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:11 ()) in
  let nodes = cluster_nodes r 1 4096 in
  let res = Sim.Cluster.run ~nodes ~network_gbps:Float.infinity in
  let _, sys = List.hd nodes in
  let direct = Sim.Perf.run_hw ~system:sys ~board in
  Alcotest.(check (float 1e-9)) "same time" direct.Sim.Perf.total_seconds
    res.Sim.Cluster.cluster_seconds;
  Alcotest.(check (float 1e-6)) "speedup 1" 1.0 res.Sim.Cluster.speedup_vs_first_node

let test_cluster_strong_scaling () =
  let r = Cfd_core.Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:11 ()) in
  let speedup n =
    (Sim.Cluster.run ~nodes:(cluster_nodes r n 8192) ~network_gbps:100.0)
      .Sim.Cluster.speedup_vs_first_node
  in
  let s2 = speedup 2 and s4 = speedup 4 in
  Alcotest.(check bool) "2 nodes faster" true (s2 > 1.5 && s2 <= 2.0);
  Alcotest.(check bool) "4 nodes faster still" true (s4 > s2 && s4 <= 4.0)

let test_cluster_network_bound () =
  let r = Cfd_core.Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:11 ()) in
  let eff gbps =
    (Sim.Cluster.run ~nodes:(cluster_nodes r 4 8192) ~network_gbps:gbps)
      .Sim.Cluster.efficiency
  in
  Alcotest.(check bool) "slow network hurts efficiency" true (eff 1.0 < eff 100.0)

let test_cluster_partition () =
  Alcotest.(check (list int)) "even" [ 4; 4; 4 ]
    (Sim.Cluster.partition_elements ~n:12 ~parts:3);
  Alcotest.(check (list int)) "ragged" [ 5; 4; 4 ]
    (Sim.Cluster.partition_elements ~n:13 ~parts:3);
  match Sim.Cluster.partition_elements ~n:2 ~parts:3 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---------- bottleneck analysis ---------- *)

let test_bottleneck_compute_bound () =
  let r = Cfd_core.Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:11 ()) in
  let sys = Cfd_core.Compile.build_system ~force_k:1 ~n_elements:1024 r in
  let rep = Sim.Bottleneck.analyze ~system:sys ~board () in
  Alcotest.(check bool) "compute bound" true
    (rep.Sim.Bottleneck.time = Sim.Bottleneck.Compute_bound);
  Alcotest.(check bool) "fractions sum to 1" true
    (Float.abs
       (rep.Sim.Bottleneck.compute_fraction
       +. rep.Sim.Bottleneck.transfer_fraction -. 1.0)
    < 1e-9);
  (* k = 1 is far from the resource ceiling *)
  Alcotest.(check bool) "headroom" true
    (rep.Sim.Bottleneck.doubling_blocked_by = Sim.Bottleneck.None_fits_more)

let test_bottleneck_bram_blocked () =
  (* the paper's story: at max replication the binding resource is BRAM *)
  let r = Cfd_core.Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:11 ()) in
  let sys = Cfd_core.Compile.build_system ~n_elements:1024 r in
  let rep = Sim.Bottleneck.analyze ~system:sys ~board () in
  Alcotest.(check bool) "BRAM binds at m=16" true
    (rep.Sim.Bottleneck.doubling_blocked_by = Sim.Bottleneck.Bram)

let test_bottleneck_overlap_gain () =
  let r = Cfd_core.Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:11 ()) in
  let sys = Cfd_core.Compile.build_system ~force_k:4 ~force_m:8 ~n_elements:1024 r in
  let rep = Sim.Bottleneck.analyze ~system:sys ~board () in
  (match rep.Sim.Bottleneck.overlap_gain with
  | Some g -> Alcotest.(check bool) "gain > 1" true (g > 1.0)
  | None -> Alcotest.fail "expected an overlap gain");
  (* without spare PLM sets there is no double buffering *)
  let sys_kk = Cfd_core.Compile.build_system ~force_k:8 ~n_elements:1024 r in
  let rep_kk = Sim.Bottleneck.analyze ~system:sys_kk ~board () in
  Alcotest.(check bool) "no gain without spare sets" true
    (rep_kk.Sim.Bottleneck.overlap_gain = None)

let suite =
  [
    ( "operators",
      [
        case "all verify end-to-end" test_operators_all_verify;
        case "gradient reference" test_gradient_reference;
        case "laplacian reference" test_laplacian_reference;
        case "laplacian with identity stiffness" test_laplacian_identity_stiffness;
        case "multi-output system" test_gradient_multi_output_system;
        case "gradient through full system" test_gradient_through_full_system;
        case "autoschedule on suite" test_autoschedule_operator_suite;
        case "factorization benefit" test_operator_factorization_benefit;
        Test_seed.to_alcotest qcheck_partition_always_verifies;
      ] );
    ( "explore",
      [
        case "sweep outcomes" test_sweep_outcomes;
        case "pareto front" test_pareto_no_dominated;
        case "small board" test_sweep_small_board_infeasible;
        case "emit_all" test_emit_all;
      ] );
    ( "sim.overlap",
      [
        case "overlap helps batching" test_overlap_helps_batching;
        case "requires double buffering" test_overlap_requires_double_buffering;
      ] );
    ( "sim.cluster",
      [
        case "single node degenerates" test_cluster_single_node_degenerates;
        case "strong scaling" test_cluster_strong_scaling;
        case "network bound" test_cluster_network_bound;
        case "partitioning" test_cluster_partition;
      ] );
    ( "sim.bottleneck",
      [
        case "compute bound" test_bottleneck_compute_bound;
        case "BRAM blocks doubling" test_bottleneck_bram_blocked;
        case "overlap gain" test_bottleneck_overlap_gain;
      ] );
  ]
