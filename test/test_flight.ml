(* Flight recorder and structured event log: bounded-ring retention
   under wraparound (sequential and across worker domains), crash-bundle
   contents from a deliberately trapped pool worker, JSON-lines sink
   well-formedness, and the disabled recorder's zero footprint — no
   allocation on the hot path, bit-identical compiler output. *)

let case name f = Alcotest.test_case name `Quick f

(* Recorder and log state is process-global; every test restores
   disabled+empty+default so the rest of the suite sees seed behaviour. *)
let with_flight f =
  Obs.Flight.set_enabled true;
  Obs.Flight.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Flight.set_enabled false;
      Obs.Flight.set_capacity Obs.Flight.default_capacity;
      Obs.Flight.reset ();
      Obs.Flight.set_provenance None)
    f

let with_quiet_log f =
  Obs.Log.set_mirror None;
  Fun.protect ~finally:(fun () -> Obs.Log.set_mirror (Some Obs.Log.Warn)) f

let span_names () =
  List.filter_map
    (function
      | Obs.Flight.Span s -> Some s.Obs.Flight.sp_name
      | Obs.Flight.Log _ -> None)
    (Obs.Flight.entries ())

(* A ring of capacity c retains exactly the last min(n, c) spans, in
   order — the wraparound keeps the suffix, not the prefix. *)
let qcheck_ring_wraparound =
  QCheck.Test.make ~name:"ring retains the most recent suffix" ~count:50
    QCheck.(pair (int_range 1 8) (int_range 0 40))
    (fun (cap, n) ->
      Obs.Flight.set_capacity cap;
      with_flight (fun () ->
          for i = 0 to n - 1 do
            Obs.Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
          done;
          let got = span_names () in
          let kept = min n cap in
          let expected =
            List.init kept (fun i -> Printf.sprintf "s%d" (n - kept + i))
          in
          got = expected
          || QCheck.Test.fail_reportf "cap=%d n=%d: retained [%s], expected [%s]"
               cap n (String.concat ";" got)
               (String.concat ";" expected)))

(* With capacity comfortably above the workload, the retained span set
   is scheduling-independent: jobs:1 and jobs:4 agree. *)
let qcheck_ring_jobs_agree =
  QCheck.Test.make ~name:"retained set: jobs:1 = jobs:4" ~count:20
    QCheck.(int_range 1 30)
    (fun n ->
      let run jobs =
        Obs.Flight.reset ();
        List.iter
          (function
            | Ok () -> ()
            | Error (e : Parallel.Pool.error) ->
                QCheck.Test.fail_reportf "pool failed: %s"
                  e.Parallel.Pool.message)
          (Parallel.Pool.map ~jobs
             (fun i -> Obs.Trace.with_span (Printf.sprintf "w%d" i) (fun () -> ()))
             (List.init n (fun i -> i)));
        List.sort_uniq compare
          (List.filter
             (fun name -> String.length name > 1 && name.[0] = 'w')
             (span_names ()))
      in
      with_flight (fun () ->
          let seq = run 1 in
          let par = run 4 in
          seq = par
          || QCheck.Test.fail_reportf "n=%d: jobs:1 [%s] <> jobs:4 [%s]" n
               (String.concat ";" seq) (String.concat ";" par)))

(* The disabled hot path — with_span and a below-threshold log event —
   allocates nothing: 10k iterations must not move the minor heap by
   more than the measurement's own constant. *)
let test_disabled_zero_alloc () =
  Obs.Trace.set_enabled false;
  Obs.Flight.set_enabled false;
  let nop () = () in
  let iters = 10_000 in
  let measure f =
    let w0 = Gc.minor_words () in
    for _ = 1 to iters do
      f ()
    done;
    Gc.minor_words () -. w0
  in
  let span_words = measure (fun () -> Obs.Trace.with_span "hot" nop) in
  Alcotest.(check bool)
    (Printf.sprintf "disabled with_span allocates nothing (%.0f words)"
       span_words)
    true (span_words < 1_000.0);
  let log_words =
    measure (fun () -> Obs.Log.msg Obs.Log.Debug ~scope:"hot" "dropped")
  in
  Alcotest.(check bool)
    (Printf.sprintf "below-threshold log allocates nothing (%.0f words)"
       log_words)
    true (log_words < 1_000.0)

(* Observability must not perturb what the compiler produces: the same
   program compiled with the recorder on and off yields byte-identical
   artifacts. *)
let test_disabled_identical_compile () =
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:4 () in
  let off = Cfd_core.Compile.compile ast in
  let on = with_flight (fun () -> Cfd_core.Compile.compile ast) in
  Alcotest.(check string)
    "C source identical" off.Cfd_core.Compile.c_source
    on.Cfd_core.Compile.c_source;
  Alcotest.(check string)
    "mnemosyne metadata identical" off.Cfd_core.Compile.mnemosyne_metadata
    on.Cfd_core.Compile.mnemosyne_metadata;
  Alcotest.(check bool) "HLS report identical" true
    (Stdlib.compare off.Cfd_core.Compile.hls on.Cfd_core.Compile.hls = 0)

let member_exn k j =
  match Obs.Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "bundle missing %S" k

(* Trap a pool worker, then dump: the bundle must carry the worker's
   spans, the pool's error event, the metrics snapshot and the
   provenance manifest — enough to reconstruct the failing run. *)
let test_crash_bundle_from_trapped_worker () =
  with_flight (fun () ->
      with_quiet_log (fun () ->
          Obs.Flight.set_provenance
            (Some (Cfd_core.Version.manifest ~run_id:"test-run" ()));
          let results =
            Parallel.Pool.map ~jobs:4
              (fun i -> if i = 5 then failwith "induced trap" else ())
              (List.init 8 (fun i -> i))
          in
          (match List.nth results 5 with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "task 5 should have trapped");
          let dir =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "cfdc-test-crash-%d" (Unix.getpid ()))
          in
          let path =
            match
              Obs.Flight.write_crash ~dir ~reason:"test: trapped worker" ()
            with
            | Some p -> p
            | None -> Alcotest.fail "write_crash failed"
          in
          Fun.protect
            ~finally:(fun () ->
              Sys.remove path;
              try Unix.rmdir dir with Unix.Unix_error _ -> ())
            (fun () ->
              let bundle =
                match Obs.Json.of_file path with
                | Ok j -> j
                | Error e -> Alcotest.failf "bundle unparsable: %s" e
              in
              Alcotest.(check bool) "format version" true
                (member_exn "bundle_format_version" bundle
                = Obs.Json.Int Obs.Flight.bundle_format_version);
              Alcotest.(check bool) "reason recorded" true
                (member_exn "reason" bundle
                = Obs.Json.String "test: trapped worker");
              (match
                 Obs.Json.member "run_id" (member_exn "provenance" bundle)
               with
              | Some (Obs.Json.String "test-run") -> ()
              | _ -> Alcotest.fail "provenance lost the run id");
              (match member_exn "metrics" bundle with
              | Obs.Json.Obj _ -> ()
              | _ -> Alcotest.fail "metrics snapshot missing");
              let entries =
                match member_exn "entries" bundle with
                | Obs.Json.List es -> es
                | _ -> Alcotest.fail "entries is not a list"
              in
              let has pred = List.exists pred entries in
              Alcotest.(check bool) "worker spans retained" true
                (has (fun e ->
                     Obs.Json.member "name" e
                     = Some (Obs.Json.String "pool.task")));
              Alcotest.(check bool) "trap logged as a pool error" true
                (has (fun e ->
                     Obs.Json.member "scope" e
                       = Some (Obs.Json.String "pool")
                     && Obs.Json.member "level" e
                        = Some (Obs.Json.String "error")
                     &&
                     match Obs.Json.member "msg" e with
                     | Some (Obs.Json.String m) ->
                         (try
                            ignore (Str.search_forward
                                      (Str.regexp_string "induced trap") m 0);
                            true
                          with Not_found -> false)
                     | _ -> false)))))

(* Every line the sink writes is one self-contained JSON object with
   the full field set, control characters escaped. *)
let test_jsonl_wellformed () =
  with_quiet_log (fun () ->
      let path = Filename.temp_file "cfdc-test-log" ".jsonl" in
      Obs.Log.set_level Obs.Log.Debug;
      Obs.Log.set_sink (Some (open_out path));
      Fun.protect
        ~finally:(fun () ->
          Obs.Log.set_sink None;
          Obs.Log.set_level Obs.Log.Warn;
          Sys.remove path)
        (fun () ->
          let nasty = "quote \" backslash \\ newline \n tab \t ctrl \x01 done" in
          Obs.Log.msg Obs.Log.Debug ~scope:"test" nasty;
          Obs.Log.info ~scope:"test"
            ~attrs:[ ("key", "value with \n newline") ]
            "formatted %d %s" 42 "ok";
          Obs.Log.error ~scope:"test" "an error";
          Obs.Log.set_sink None;
          let ic = open_in path in
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> close_in ic);
          let lines = List.rev !lines in
          Alcotest.(check int) "three events, three lines" 3
            (List.length lines);
          let parsed =
            List.map
              (fun line ->
                match Obs.Json.parse line with
                | Ok j -> j
                | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e)
              lines
          in
          List.iter
            (fun j ->
              List.iter
                (fun field -> ignore (member_exn field j))
                [ "ts"; "level"; "scope"; "msg"; "tid"; "span" ])
            parsed;
          (match List.nth_opt parsed 0 with
          | Some j ->
              Alcotest.(check bool) "control characters round-trip" true
                (member_exn "msg" j = Obs.Json.String nasty)
          | None -> Alcotest.fail "no first line");
          match List.nth_opt parsed 1 with
          | Some j ->
              Alcotest.(check bool) "format variant built its message" true
                (member_exn "msg" j = Obs.Json.String "formatted 42 ok");
              let attrs = member_exn "attrs" j in
              Alcotest.(check bool) "attrs escaped" true
                (Obs.Json.member "key" attrs
                = Some (Obs.Json.String "value with \n newline"))
          | None -> Alcotest.fail "no second line"))

let suite =
  [
    ( "flight.ring",
      [
        QCheck_alcotest.to_alcotest qcheck_ring_wraparound;
        QCheck_alcotest.to_alcotest qcheck_ring_jobs_agree;
      ] );
    ( "flight.disabled",
      [
        case "hot path allocates nothing" test_disabled_zero_alloc;
        case "compiler output identical" test_disabled_identical_compile;
      ] );
    ( "flight.crash",
      [ case "trapped worker produces a full bundle"
          test_crash_bundle_from_trapped_worker ] );
    ( "log.sink",
      [ case "JSONL lines parse with full field set" test_jsonl_wellformed ]
    );
  ]
