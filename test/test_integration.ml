(* Integration-level tests: dataflow analysis & auto-scheduling, the
   full-system functional simulation (steering/transfer validation), and a
   whole-pipeline fuzzer over randomly generated CFDlang programs. *)

open Tensor

let case name f = Alcotest.test_case name `Quick f

let helm_program ?(p = 4) () =
  let checked = Cfdlang.Check.check_exn (Cfdlang.Ast.inverse_helmholtz ~p ()) in
  Lower.Flow.of_kernel ~name:"helm" (Tir.Builder.build ~name:"helm" checked)

(* ---------- dataflow ---------- *)

let test_statement_deps () =
  let program = helm_program () in
  let deps = Lower.Dataflow.statement_deps program in
  let has kind src dst array =
    List.exists
      (fun (d : Lower.Dataflow.dep) ->
        d.Lower.Dataflow.kind = kind && d.Lower.Dataflow.src_stmt = src
        && d.Lower.Dataflow.dst_stmt = dst && d.Lower.Dataflow.array = array)
      deps
  in
  Alcotest.(check bool) "RAW t_mac -> r_stmt on t" true
    (has Lower.Dataflow.Raw "t_mac" "r_stmt" "t");
  Alcotest.(check bool) "WAW t_init -> t_mac" true
    (has Lower.Dataflow.Waw "t_init" "t_mac" "t");
  Alcotest.(check bool) "RAR t_mac, v_mac on S" true
    (has Lower.Dataflow.Rar "t_mac" "v_mac" "S");
  Alcotest.(check bool) "no RAW v -> t" false
    (has Lower.Dataflow.Raw "v_mac" "t_mac" "t")

let test_element_raw_hadamard () =
  let program = helm_program ~p:3 () in
  let rel = Lower.Dataflow.element_raw program "t_mac" "r_stmt" in
  (* the mac instance [i,j,k,l,m,n] feeds exactly the pointwise instance
     [i,j,k] *)
  Alcotest.(check bool) "feeds same point" true
    (Poly.Rel.mem rel [| 1; 2; 0; 0; 1; 2 |] [| 1; 2; 0 |]);
  Alcotest.(check bool) "not another point" false
    (Poly.Rel.mem rel [| 1; 2; 0; 0; 1; 2 |] [| 0; 2; 0 |])

let test_element_raw_errors () =
  let program = helm_program ~p:2 () in
  (match Lower.Dataflow.element_raw program "nope" "r_stmt" with
  | _ -> Alcotest.fail "expected Error"
  | exception Lower.Flow.Error _ -> ());
  match Lower.Dataflow.element_raw program "r_stmt" "t_mac" with
  | _ -> Alcotest.fail "expected Error (no shared array)"
  | exception Lower.Flow.Error _ -> ()

let test_live_span_cost_prefers_fusion () =
  let program = helm_program () in
  let unfused =
    Lower.Reschedule.compute
      ~options:
        { Lower.Reschedule.default with Lower.Reschedule.fuse_init = false }
      program
  in
  let fused =
    Lower.Reschedule.compute
      ~options:
        { Lower.Reschedule.default with Lower.Reschedule.fuse_pointwise = true }
      program
  in
  let c_unfused = Lower.Dataflow.live_span_cost program unfused in
  let c_fused = Lower.Dataflow.live_span_cost program fused in
  Alcotest.(check bool) "fusion shrinks live spans" true (c_fused < c_unfused)

let test_autoschedule_picks_min_cost () =
  let program = helm_program () in
  let options, sched = Lower.Autoschedule.schedule program in
  Lower.Schedule.validate program sched;
  Alcotest.(check bool) "legal" true (Lower.Schedule.legal program sched);
  (* the cost-minimal candidate for Helmholtz fuses everything *)
  Alcotest.(check bool) "fuses init" true options.Lower.Reschedule.fuse_init;
  Alcotest.(check bool) "fuses pointwise" true options.Lower.Reschedule.fuse_pointwise;
  let cost = Lower.Dataflow.live_span_cost program sched in
  List.iter
    (fun o ->
      let other = Lower.Reschedule.compute ~options:o program in
      Alcotest.(check bool) "minimal" true
        (cost <= Lower.Dataflow.live_span_cost program other))
    Lower.Autoschedule.candidates

let test_autoschedule_codegen_verifies () =
  let program = helm_program () in
  let _, sched = Lower.Autoschedule.schedule program in
  let proc = Loopir.Scalarize.optimize (Lower.Codegen.generate program sched) in
  let inputs = Helmholtz.make_inputs ~seed:2 4 in
  let results =
    Loopir.Interp.run_fresh proc
      ~inputs:
        [
          ("S", Dense.to_array inputs.Helmholtz.s);
          ("D", Dense.to_array inputs.Helmholtz.d);
          ("u", Dense.to_array inputs.Helmholtz.u);
        ]
  in
  let got = Dense.of_array (Shape.cube 3 4) (List.assoc "v" results) in
  Alcotest.(check bool) "verifies" true
    (Dense.equal ~tol:1e-8 got (Helmholtz.direct inputs))

(* ---------- full-system functional simulation ---------- *)

let compile_small () =
  Cfd_core.Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:4 ())

let run_system ?(n = 10) ~force_k ?force_m () =
  let r = compile_small () in
  let sys = Cfd_core.Compile.build_system ~force_k ?force_m ~n_elements:n r in
  Sysgen.System.validate sys;
  let element_inputs =
    Array.init n (fun e -> Helmholtz.make_inputs ~seed:(100 + e) 4)
  in
  let inputs e =
    let i = element_inputs.(e) in
    [
      ("S", Dense.to_array i.Helmholtz.s);
      ("D", Dense.to_array i.Helmholtz.d);
      ("u", Dense.to_array i.Helmholtz.u);
    ]
  in
  let outs =
    Sim.Functional.run ~system:sys ~proc:r.Cfd_core.Compile.proc ~inputs ~n ()
  in
  Array.iteri
    (fun e bindings ->
      let v = List.assoc "v" bindings in
      let got = Dense.of_array (Shape.cube 3 4) v in
      let expected = Helmholtz.direct element_inputs.(e) in
      if not (Dense.equal ~tol:1e-8 got expected) then
        Alcotest.failf "element %d wrong (max diff %g)" e
          (Dense.max_abs_diff got expected))
    outs

let test_functional_k1 () = run_system ~force_k:1 ()
let test_functional_k4 () = run_system ~force_k:4 ()

let test_functional_batched () =
  (* k=2, m=8: four rounds per block, exercising the batch steering *)
  run_system ~n:17 ~force_k:2 ~force_m:8 ()

let test_functional_padded_tail () =
  (* n not a multiple of m: the padded tail must not corrupt results *)
  run_system ~n:7 ~force_k:4 ~force_m:4 ()

let test_functional_missing_input () =
  let r = compile_small () in
  let sys = Cfd_core.Compile.build_system ~force_k:1 ~n_elements:2 r in
  match
    Sim.Functional.run ~system:sys ~proc:r.Cfd_core.Compile.proc
      ~inputs:(fun _ -> [])
      ~n:2 ()
  with
  | _ -> Alcotest.fail "expected Error"
  | exception Sim.Functional.Error _ -> ()

(* ---------- whole-pipeline fuzzer ---------- *)

(* Random single-assignment CFDlang programs over small shapes: each
   statement combines previously defined tensors with elementwise ops,
   matrix-vector / matrix-matrix contractions, or TTM contractions. *)
let gen_program =
  QCheck.Gen.(
    let dims_pool = [ []; [ 3 ]; [ 3; 3 ]; [ 3; 3; 3 ] ] in
    let* n_inputs = int_range 2 4 in
    let* input_dims = list_repeat n_inputs (oneofl dims_pool) in
    let inputs = List.mapi (fun i d -> (Printf.sprintf "in%d" i, d)) input_dims in
    let* n_stmts = int_range 1 4 in
    let rec build env acc k st =
      if k = 0 then List.rev acc
      else begin
        let name = Printf.sprintf "x%d" (List.length acc) in
        (* choose an expression over env *)
        let pick_with_dims want =
          let cands = List.filter (fun (_, d) -> d = want) env in
          match cands with
          | [] -> None
          | l -> Some (fst (List.nth l (Random.State.int st (List.length l))))
        in
        let choice = Random.State.int st 4 in
        let stmt_and_dims =
          match choice with
          | 0 -> (
              (* elementwise of two same-shaped tensors *)
              let _, d = List.nth env (Random.State.int st (List.length env)) in
              match pick_with_dims d with
              | Some a -> (
                  match pick_with_dims d with
                  | Some b ->
                      let op = List.nth [ "+"; "-"; "*" ] (Random.State.int st 3) in
                      Some (Printf.sprintf "%s = %s %s %s" name a op b, d)
                  | None -> None)
              | None -> None)
          | 1 -> (
              (* scalar scale *)
              let a, d = List.nth env (Random.State.int st (List.length env)) in
              Some (Printf.sprintf "%s = %s * 2.0 + %s" name a a, d))
          | 2 -> (
              (* matvec: [3;3] # [3] . [[1 2]] *)
              match (pick_with_dims [ 3; 3 ], pick_with_dims [ 3 ]) with
              | Some m, Some v ->
                  Some (Printf.sprintf "%s = %s # %s . [[1 2]]" name m v, [ 3 ])
              | _ -> None)
          | _ -> (
              (* matmul: [3;3] # [3;3] . [[1 2]] *)
              match (pick_with_dims [ 3; 3 ], pick_with_dims [ 3; 3 ]) with
              | Some a, Some b ->
                  Some (Printf.sprintf "%s = %s # %s . [[1 2]]" name a b, [ 3; 3 ])
              | _ -> None)
        in
        match stmt_and_dims with
        | Some (stmt, d) -> build ((name, d) :: env) ((stmt, (name, d)) :: acc) (k - 1) st
        | None -> build env acc (k - 1) st
      end
    in
    fun random_state ->
      let stmts = build inputs [] n_stmts random_state in
      match stmts with
      | [] -> None
      | _ ->
          let _, (out_name, out_dims) = List.nth stmts (List.length stmts - 1) in
          let decls =
            List.map
              (fun (n, d) ->
                Printf.sprintf "var input %s : [%s]" n
                  (String.concat " " (List.map string_of_int d)))
              inputs
            @ List.map
                (fun (_, (n, d)) ->
                  Printf.sprintf "var %s : [%s]" n
                    (String.concat " " (List.map string_of_int d)))
                stmts
            @ [
                Printf.sprintf "var output out : [%s]"
                  (String.concat " " (List.map string_of_int out_dims));
              ]
          in
          let body = List.map fst stmts in
          Some
            (String.concat "\n" (decls @ body @ [ "out = " ^ out_name ])))

let qcheck_fuzz_pipeline =
  QCheck.Test.make ~name:"random programs survive the whole pipeline" ~count:60
    (QCheck.make gen_program)
    (fun source_opt ->
      match source_opt with
      | None -> true
      | Some source -> (
          match Cfd_core.Compile.compile_source source with
          | Error msg ->
              (* generated programs are well-typed by construction *)
              QCheck.Test.fail_reportf "compile failed: %s\n%s" msg source
          | Ok r ->
              Cfd_core.Compile.verify ~seed:17 r
              ||
              QCheck.Test.fail_reportf "verification failed for\n%s" source))

let qcheck_fuzz_option_matrix =
  QCheck.Test.make ~name:"random programs verify under all option sets" ~count:20
    (QCheck.make gen_program)
    (fun source_opt ->
      match source_opt with
      | None -> true
      | Some source ->
          List.for_all
            (fun (factorize, decoupled, sharing) ->
              let options =
                {
                  Cfd_core.Compile.default_options with
                  Cfd_core.Compile.factorize;
                  decoupled;
                  sharing;
                }
              in
              match Cfd_core.Compile.compile_source ~options source with
              | Error msg -> QCheck.Test.fail_reportf "compile: %s\n%s" msg source
              | Ok r ->
                  Cfd_core.Compile.verify ~seed:3 r
                  || QCheck.Test.fail_reportf "verify failed (f=%b d=%b s=%b)\n%s"
                       factorize decoupled sharing source)
            [ (true, true, true); (false, true, false); (true, false, true) ])

let suite =
  [
    ( "dataflow",
      [
        case "statement deps" test_statement_deps;
        case "element RAW (hadamard)" test_element_raw_hadamard;
        case "element RAW errors" test_element_raw_errors;
        case "live span cost" test_live_span_cost_prefers_fusion;
        case "autoschedule minimal" test_autoschedule_picks_min_cost;
        case "autoschedule verifies" test_autoschedule_codegen_verifies;
      ] );
    ( "sim.functional",
      [
        case "k=1" test_functional_k1;
        case "k=4" test_functional_k4;
        case "batched k=2 m=8" test_functional_batched;
        case "padded tail" test_functional_padded_tail;
        case "missing input" test_functional_missing_input;
      ] );
    ( "fuzz",
      [
        Test_seed.to_alcotest qcheck_fuzz_pipeline;
        Test_seed.to_alcotest qcheck_fuzz_option_matrix;
      ] );
  ]
