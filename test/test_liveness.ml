(* Tests for lib/liveness: live intervals and the Figure-5 memory
   compatibility graph of the Inverse Helmholtz kernel. *)

let case name f = Alcotest.test_case name `Quick f

let helmholtz_liveness ?(p = 4) ?(options = Lower.Reschedule.default) () =
  let checked = Cfdlang.Check.check_exn (Cfdlang.Ast.inverse_helmholtz ~p ()) in
  let kernel = Tir.Builder.build ~name:"helm" checked in
  let program = Lower.Flow.of_kernel ~name:"helm" kernel in
  let schedule = Lower.Reschedule.compute ~options program in
  (program, schedule, Liveness.Analysis.analyze program schedule)

let test_intervals_ordered () =
  let _, _, live = helmholtz_liveness () in
  let t = Liveness.Analysis.find live "t" in
  let r = Liveness.Analysis.find live "r" in
  let u = Liveness.Analysis.find live "u" in
  (* u's last read happens while t is being produced *)
  Alcotest.(check bool) "u ends before r starts" true
    (Poly.Lex.lt u.Liveness.Analysis.last_read r.Liveness.Analysis.first_write);
  Alcotest.(check bool) "t ends before v starts" true
    (Poly.Lex.lt t.Liveness.Analysis.last_read
       (Liveness.Analysis.find live "v").Liveness.Analysis.first_write)

let test_virtual_first_last () =
  let _, _, live = helmholtz_liveness () in
  let s = Liveness.Analysis.find live "S" in
  let v = Liveness.Analysis.find live "v" in
  Alcotest.(check bool) "inputs live from virtual first" true
    (s.Liveness.Analysis.first_write = [| min_int |]);
  Alcotest.(check bool) "outputs live to virtual last" true
    (v.Liveness.Analysis.last_read = [| max_int |])

let test_writers_readers () =
  let _, _, live = helmholtz_liveness () in
  let t = Liveness.Analysis.find live "t" in
  Alcotest.(check (list string)) "t writers" [ "t_init"; "t_mac" ]
    t.Liveness.Analysis.writers;
  Alcotest.(check (list string)) "t readers" [ "r_stmt" ]
    t.Liveness.Analysis.readers;
  let s = Liveness.Analysis.find live "S" in
  Alcotest.(check (list string)) "S readers" [ "t_mac"; "v_mac" ]
    s.Liveness.Analysis.readers

(* The key address-space compatibilities the paper's evaluation exploits
   (Section VI: 31 -> 18 BRAMs): {u,r}, {t,v}, {D,v}, {u,v}. *)
let test_address_space_compatibilities () =
  let _, _, live = helmholtz_liveness () in
  let compat = Liveness.Analysis.address_space_compatible live in
  Alcotest.(check bool) "u ~ r" true (compat "u" "r");
  Alcotest.(check bool) "t ~ v" true (compat "t" "v");
  Alcotest.(check bool) "D ~ v" true (compat "D" "v");
  Alcotest.(check bool) "u ~ v" true (compat "u" "v");
  (* and the incompatibilities *)
  Alcotest.(check bool) "u !~ t" false (compat "u" "t");
  Alcotest.(check bool) "t !~ r" false (compat "t" "r");
  Alcotest.(check bool) "r !~ v" false (compat "r" "v");
  Alcotest.(check bool) "D !~ t" false (compat "D" "t");
  Alcotest.(check bool) "S !~ u" false (compat "S" "u");
  Alcotest.(check bool) "S !~ v" false (compat "S" "v")

let test_interface_compatibilities () =
  let _, _, live = helmholtz_liveness () in
  let compat = Liveness.Analysis.interface_compatible live in
  (* S and u are both read by t_mac at the same instances: conflict. *)
  Alcotest.(check bool) "S !~ u" false (compat "S" "u");
  Alcotest.(check bool) "S !~ r" false (compat "S" "r");
  (* S is never read together with D or t. *)
  Alcotest.(check bool) "S ~ D" true (compat "S" "D");
  Alcotest.(check bool) "S ~ t" true (compat "S" "t");
  (* D and t are read together by r_stmt. *)
  Alcotest.(check bool) "D !~ t" false (compat "D" "t");
  (* v is only written; never read together with anything. *)
  Alcotest.(check bool) "S ~ v (write vs read)" true (compat "S" "v")

let test_graph_edges () =
  let _, _, live = helmholtz_liveness () in
  let graph = Liveness.Analysis.compatibility_graph live in
  let edge a b =
    List.find_opt
      (fun (e : Liveness.Analysis.edge) ->
        e.Liveness.Analysis.a = min a b && e.Liveness.Analysis.b = max a b)
      graph
  in
  (match edge "r" "u" with
  | Some e -> Alcotest.(check bool) "u-r address space" true e.Liveness.Analysis.address_space
  | None -> Alcotest.fail "missing u-r edge");
  (match edge "t" "v" with
  | Some e -> Alcotest.(check bool) "t-v address space" true e.Liveness.Analysis.address_space
  | None -> Alcotest.fail "missing t-v edge");
  (match edge "D" "S" with
  | Some e ->
      Alcotest.(check bool) "S-D interface only" true
        (e.Liveness.Analysis.mem_interface && not e.Liveness.Analysis.address_space)
  | None -> Alcotest.fail "missing S-D edge");
  (* u-t: lifetimes overlap (u is read while t is written), but reads and
     writes are different operation types, so only an interface edge. *)
  match edge "t" "u" with
  | Some e ->
      Alcotest.(check bool) "u-t interface only" true
        (e.Liveness.Analysis.mem_interface && not e.Liveness.Analysis.address_space)
  | None -> Alcotest.fail "missing u-t interface edge"

let test_liveness_respects_schedule () =
  (* Under the unfused reference schedule the same compatibilities hold
     (they are statement-level in this kernel). *)
  let checked = Cfdlang.Check.check_exn (Cfdlang.Ast.inverse_helmholtz ~p:3 ()) in
  let kernel = Tir.Builder.build ~name:"helm" checked in
  let program = Lower.Flow.of_kernel ~name:"helm" kernel in
  let schedule = Lower.Schedule.reference program in
  let live = Liveness.Analysis.analyze program schedule in
  Alcotest.(check bool) "u ~ r" true
    (Liveness.Analysis.address_space_compatible live "u" "r");
  Alcotest.(check bool) "t !~ r" false
    (Liveness.Analysis.address_space_compatible live "t" "r")

let test_factorized_chain_compatibilities () =
  (* With factorization the temporaries form a chain; stage i's output is
     dead once stage i+1 completes, so stage1 ~ stage3 outputs can share. *)
  let checked = Cfdlang.Check.check_exn (Cfdlang.Ast.inverse_helmholtz ~p:3 ()) in
  let kernel = Tir.Transform.factorize (Tir.Builder.build ~name:"helm" checked) in
  let program = Lower.Flow.of_kernel ~name:"helm" kernel in
  let schedule = Lower.Reschedule.compute program in
  let live = Liveness.Analysis.analyze program schedule in
  (* find the transient names: stage outputs %f0, %f1 then t *)
  let infos = Liveness.Analysis.arrays live in
  let transients =
    List.filter_map
      (fun (i : Liveness.Analysis.array_liveness) ->
        if String.length i.Liveness.Analysis.array > 0 && i.Liveness.Analysis.array.[0] = '%' then
          Some i.Liveness.Analysis.array
        else None)
      infos
  in
  Alcotest.(check int) "four transients" 4 (List.length transients);
  (* consecutive stages interfere, alternating stages are compatible *)
  match transients with
  | a :: _ :: rest ->
      Alcotest.(check bool) "stage1 !~ stage2" false
        (Liveness.Analysis.address_space_compatible live a (List.nth transients 1));
      (match rest with
      | c :: _ ->
          Alcotest.(check bool) "stage1 ~ stage3" true
            (Liveness.Analysis.address_space_compatible live a c)
      | [] -> ())
  | _ -> Alcotest.fail "unexpected transients"

let test_element_intervals_hull () =
  (* the array-level interval is the lexicographic hull of the exact
     per-element intervals *)
  let program, schedule, live = helmholtz_liveness ~p:3 () in
  List.iter
    (fun name ->
      let elems = Liveness.Analysis.element_intervals program schedule name in
      Alcotest.(check bool) (name ^ " has elements") true (elems <> []);
      let hull =
        List.fold_left
          (fun acc (_, i) ->
            match acc with None -> Some i | Some h -> Some (Poly.Lex.hull h i))
          None elems
      in
      let info = Liveness.Analysis.find live name in
      match hull with
      | Some h ->
          Alcotest.(check bool) (name ^ " hull = array interval") true
            (Poly.Lex.equal h.Poly.Lex.first info.Liveness.Analysis.interval.Poly.Lex.first
            && Poly.Lex.equal h.Poly.Lex.last info.Liveness.Analysis.interval.Poly.Lex.last)
      | None -> Alcotest.fail "no hull")
    [ "t"; "r"; "u"; "v" ]

let test_element_intervals_finer_than_array () =
  (* individual elements of t die before the whole array does *)
  let program, schedule, live = helmholtz_liveness ~p:3 () in
  let elems = Liveness.Analysis.element_intervals program schedule "t" in
  let array_last = (Liveness.Analysis.find live "t").Liveness.Analysis.last_read in
  Alcotest.(check bool) "some element dies early" true
    (List.exists
       (fun (_, (i : Poly.Lex.interval)) -> Poly.Lex.lt i.Poly.Lex.last array_last)
       elems)

let test_element_intervals_input_bracket () =
  let program, schedule, _ = helmholtz_liveness ~p:2 () in
  let elems = Liveness.Analysis.element_intervals program schedule "u" in
  Alcotest.(check int) "all elements" 8 (List.length elems);
  List.iter
    (fun (_, (i : Poly.Lex.interval)) ->
      Alcotest.(check bool) "starts at virtual first" true
        (i.Poly.Lex.first = [| min_int |]))
    elems

let test_unknown_array_error () =
  let _, _, live = helmholtz_liveness ~p:2 () in
  match Liveness.Analysis.find live "nope" with
  | _ -> Alcotest.fail "expected Error"
  | exception Liveness.Analysis.Error _ -> ()

(* Cross-validation: address-space compatibility proven by the functional
   oracle — merge every compatible temp pair into one buffer and check the
   generated program still computes the right answer. *)
let qcheck_sharing_oracle =
  QCheck.Test.make ~name:"every address-space-compatible pair shares safely"
    ~count:8
    QCheck.(int_range 2 4)
    (fun p ->
      let checked = Cfdlang.Check.check_exn (Cfdlang.Ast.inverse_helmholtz ~p ()) in
      let kernel = Tir.Builder.build ~name:"helm" checked in
      let program = Lower.Flow.of_kernel ~name:"helm" kernel in
      let schedule = Lower.Reschedule.compute program in
      let live = Liveness.Analysis.analyze program schedule in
      let graph = Liveness.Analysis.compatibility_graph live in
      let ok = ref true in
      List.iter
        (fun (e : Liveness.Analysis.edge) ->
          if e.Liveness.Analysis.address_space then begin
            let buffer = "shared_" ^ e.Liveness.Analysis.a ^ e.Liveness.Analysis.b in
            let storage =
              [
                (e.Liveness.Analysis.a, (buffer, 0));
                (e.Liveness.Analysis.b, (buffer, 0));
              ]
            in
            let proc = Lower.Codegen.generate ~storage program schedule in
            let inputs = Tensor.Helmholtz.make_inputs ~seed:p p in
            let input_binding name value =
              let buf, _ = match List.assoc_opt name storage with Some x -> x | None -> (name, 0) in
              (buf, Tensor.Dense.to_array value)
            in
            let bindings =
              [
                input_binding "S" inputs.Tensor.Helmholtz.s;
                input_binding "D" inputs.Tensor.Helmholtz.d;
                input_binding "u" inputs.Tensor.Helmholtz.u;
              ]
            in
            let results = Loopir.Interp.run_fresh proc ~inputs:bindings in
            let vbuf, _ =
              match List.assoc_opt "v" storage with Some x -> x | None -> ("v", 0)
            in
            let v = List.assoc vbuf results in
            let got =
              Tensor.Dense.of_array (Tensor.Shape.cube 3 p)
                (Array.sub v 0 (p * p * p))
            in
            if
              not
                (Tensor.Dense.equal ~tol:1e-8 got (Tensor.Helmholtz.direct inputs))
            then ok := false
          end)
        graph;
      !ok)

let suite =
  [
    ( "liveness",
      [
        case "intervals ordered" test_intervals_ordered;
        case "virtual first/last" test_virtual_first_last;
        case "writers/readers" test_writers_readers;
        case "address-space compatibilities (fig 5)" test_address_space_compatibilities;
        case "interface compatibilities (fig 5)" test_interface_compatibilities;
        case "graph edges" test_graph_edges;
        case "reference schedule" test_liveness_respects_schedule;
        case "factorized chain" test_factorized_chain_compatibilities;
        case "element intervals hull" test_element_intervals_hull;
        case "element granularity finer" test_element_intervals_finer_than_array;
        case "element input bracket" test_element_intervals_input_bracket;
        case "unknown array" test_unknown_array_error;
        Test_seed.to_alcotest qcheck_sharing_oracle;
      ] );
  ]
