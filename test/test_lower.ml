(* Tests for lib/lower and lib/loopir: polyhedral promotion, schedules,
   rescheduling, code generation, scalarization, C emission, and the
   end-to-end functional equivalence of generated loop programs. *)

open Tensor

let case name f = Alcotest.test_case name `Quick f

let helmholtz_program ?(p = 4) ?(factorize = false) () =
  let checked = Cfdlang.Check.check_exn (Cfdlang.Ast.inverse_helmholtz ~p ()) in
  let kernel = Tir.Builder.build ~name:"helm" checked in
  let kernel =
    if factorize then Tir.Transform.factorize kernel else kernel
  in
  (checked, Lower.Flow.of_kernel ~name:"helm" kernel)

(* Execute a generated proc on the Helmholtz inputs and compare v against
   the reference operator. *)
let check_proc_matches_reference ?(p = 4) ?(seed = 3) ?(tol = 1e-8) proc =
  let inputs = Helmholtz.make_inputs ~seed p in
  let bindings =
    [
      ("S", Dense.to_array inputs.Helmholtz.s);
      ("D", Dense.to_array inputs.Helmholtz.d);
      ("u", Dense.to_array inputs.Helmholtz.u);
    ]
  in
  let results = Loopir.Interp.run_fresh proc ~inputs:bindings in
  let v =
    match List.assoc_opt "v" results with
    | Some v -> v
    | None ->
        (* v may live in a shared buffer; find the buffer that holds it. *)
        Alcotest.fail "output buffer v not found"
  in
  let got = Dense.of_array (Shape.cube 3 p) (Array.sub v 0 (p * p * p)) in
  let expected = Helmholtz.direct inputs in
  if not (Dense.equal ~tol got expected) then
    Alcotest.failf "generated code diverges from reference (max diff %g)"
      (Dense.max_abs_diff got expected)

(* ---------- Flow ---------- *)

let test_flow_helmholtz_structure () =
  let _, program = helmholtz_program () in
  (* 6 arrays: S D u v t r; 5 statements: t_init t_mac r_stmt v_init v_mac *)
  Alcotest.(check int) "arrays" 6 (List.length program.Lower.Flow.arrays);
  Alcotest.(check int) "stmts" 5 (List.length program.Lower.Flow.stmts);
  Lower.Flow.validate program;
  let mac =
    List.find
      (fun (s : Lower.Flow.statement) -> s.Lower.Flow.stmt_name = "t_mac")
      program.Lower.Flow.stmts
  in
  Alcotest.(check int) "mac domain rank 6" 6
    (Poly.Basic_set.arity mac.Lower.Flow.domain)

let test_flow_array_kinds () =
  let _, program = helmholtz_program () in
  let kind n = (Lower.Flow.array_info program n).Lower.Flow.kind in
  Alcotest.(check bool) "S input" true (kind "S" = Lower.Flow.Input);
  Alcotest.(check bool) "v output" true (kind "v" = Lower.Flow.Output);
  Alcotest.(check bool) "t temp" true (kind "t" = Lower.Flow.Temp);
  Alcotest.(check bool) "r temp" true (kind "r" = Lower.Flow.Temp)

let test_flow_layout_row_major () =
  let _, program = helmholtz_program ~p:4 () in
  let info = Lower.Flow.array_info program "t" in
  Alcotest.(check (array int)) "layout [1;2;3]" [| (16 * 1) + (4 * 2) + 3 |]
    (Poly.Aff_map.apply info.Lower.Flow.layout [| 1; 2; 3 |])

let test_flow_operand_map_hadamard () =
  (* The paper's example: r[i,j,k] -> D[i,j,k] u t[i,j,k]. *)
  let _, program = helmholtz_program ~p:3 () in
  let r_stmt =
    List.find
      (fun (s : Lower.Flow.statement) -> s.Lower.Flow.stmt_name = "r_stmt")
      program.Lower.Flow.stmts
  in
  let maps = Lower.Flow.operand_map program r_stmt in
  Alcotest.(check int) "two operand maps" 2 (List.length maps);
  List.iter
    (fun m ->
      (* each output element depends on exactly the same-index element *)
      Alcotest.(check bool) "identity dependence" true
        (Poly.Rel.mem m [| 1; 2; 0 |] [| 1; 2; 0 |]);
      Alcotest.(check bool) "no cross dependence" false
        (Poly.Rel.mem m [| 1; 2; 0 |] [| 0; 2; 0 |]))
    maps

let test_flow_operand_map_contraction () =
  (* t[i,j,k] depends on u[l,m,n] for every l,m,n (full reduction). *)
  let _, program = helmholtz_program ~p:3 () in
  let mac =
    List.find
      (fun (s : Lower.Flow.statement) -> s.Lower.Flow.stmt_name = "t_mac")
      program.Lower.Flow.stmts
  in
  let maps = Lower.Flow.operand_map program mac in
  Alcotest.(check int) "four operand maps" 4 (List.length maps);
  let u_map = List.nth maps 3 in
  Alcotest.(check bool) "depends on all u elements" true
    (Poly.Rel.mem u_map [| 0; 1; 2 |] [| 2; 0; 1 |])

let test_flow_validate_catches_oob () =
  let _, program = helmholtz_program ~p:3 () in
  (* Corrupt a layout to be non-injective. *)
  let bad_arrays =
    List.map
      (fun (a : Lower.Flow.array_info) ->
        if a.Lower.Flow.array_name = "t" then
          { a with Lower.Flow.layout =
              Lower.Flow.default_layout "t" [ 3; 3; 1 ] }
        else a)
      program.Lower.Flow.arrays
  in
  match Lower.Flow.validate { program with Lower.Flow.arrays = bad_arrays } with
  | () -> Alcotest.fail "expected Flow.Error"
  | exception Lower.Flow.Error _ -> ()
  | exception Poly.Aff.Arity_mismatch _ -> ()

(* ---------- Schedule ---------- *)

let test_reference_schedule_valid_and_legal () =
  let _, program = helmholtz_program ~p:3 () in
  let sched = Lower.Schedule.reference program in
  Lower.Schedule.validate program sched;
  Alcotest.(check bool) "legal" true (Lower.Schedule.legal program sched)

let test_schedule_timestamp_shape () =
  let _, program = helmholtz_program ~p:3 () in
  let sched = Lower.Schedule.reference program in
  Alcotest.(check int) "depth 6" 6 (Lower.Schedule.depth sched);
  Alcotest.(check int) "arity 13" 13 (Lower.Schedule.tuple_arity sched);
  let s1 = Lower.Schedule.find sched "t_mac" in
  let ts = Lower.Schedule.timestamp sched s1 [| 1; 2; 0; 1; 0; 2 |] in
  Alcotest.(check int) "beta0" 1 ts.(0);
  Alcotest.(check int) "first var" 1 ts.(1)

let test_schedule_image_extrema () =
  let _, program = helmholtz_program ~p:3 () in
  let sched = Lower.Schedule.reference program in
  let mac =
    List.find
      (fun (s : Lower.Flow.statement) -> s.Lower.Flow.stmt_name = "t_mac")
      program.Lower.Flow.stmts
  in
  let s1 = Lower.Schedule.find sched "t_mac" in
  let lo, hi = Lower.Schedule.image_extrema sched s1 mac.Lower.Flow.domain in
  Alcotest.(check bool) "lo < hi" true (Poly.Lex.lt lo hi);
  Alcotest.(check int) "lo starts with stmt idx" 1 lo.(0);
  Alcotest.(check int) "hi starts with stmt idx" 1 hi.(0);
  Alcotest.(check int) "lo var 0" 0 lo.(1);
  Alcotest.(check int) "hi var 2" 2 hi.(1)

let test_illegal_schedule_detected () =
  (* Swap the order of the two defs: v before t is illegal. *)
  let _, program = helmholtz_program ~p:2 () in
  let sched = Lower.Schedule.reference program in
  let swapped =
    List.map
      (fun (name, (s : Lower.Schedule.sched1)) ->
        let betas = Array.copy s.Lower.Schedule.betas in
        (* reverse the statement-level order *)
        betas.(0) <- 10 - betas.(0);
        (name, { s with Lower.Schedule.betas }))
      sched
  in
  Alcotest.(check bool) "illegal" false (Lower.Schedule.legal program swapped)

let test_reschedule_fused_valid_and_legal () =
  let _, program = helmholtz_program ~p:3 () in
  let sched = Lower.Reschedule.compute program in
  Lower.Schedule.validate program sched;
  Alcotest.(check bool) "legal" true (Lower.Schedule.legal program sched);
  (* init and mac share the group beta *)
  let init = Lower.Schedule.find sched "t_init" in
  let mac = Lower.Schedule.find sched "t_mac" in
  Alcotest.(check int) "same group"
    init.Lower.Schedule.betas.(0)
    mac.Lower.Schedule.betas.(0);
  Alcotest.(check int) "mac sequenced after init" 1 mac.Lower.Schedule.betas.(3)

let test_reschedule_pointwise_fusion_legal () =
  let _, program = helmholtz_program ~p:3 () in
  let options = { Lower.Reschedule.default with Lower.Reschedule.fuse_pointwise = true } in
  let sched = Lower.Reschedule.compute ~options program in
  Lower.Schedule.validate program sched;
  Alcotest.(check bool) "legal" true (Lower.Schedule.legal program sched);
  (* r_stmt joins t's group *)
  let t_mac = Lower.Schedule.find sched "t_mac" in
  let r_stmt = Lower.Schedule.find sched "r_stmt" in
  Alcotest.(check int) "r fused with t"
    t_mac.Lower.Schedule.betas.(0)
    r_stmt.Lower.Schedule.betas.(0)

let test_reschedule_reduction_outer_legal () =
  let _, program = helmholtz_program ~p:2 () in
  let options =
    { Lower.Reschedule.default with Lower.Reschedule.reduction_inner = false }
  in
  let sched = Lower.Reschedule.compute ~options program in
  Lower.Schedule.validate program sched;
  Alcotest.(check bool) "legal" true (Lower.Schedule.legal program sched)

(* ---------- Codegen + end-to-end ---------- *)

let test_codegen_reference_schedule () =
  let _, program = helmholtz_program ~p:4 () in
  let sched = Lower.Schedule.reference program in
  let proc = Lower.Codegen.generate program sched in
  check_proc_matches_reference ~p:4 proc

let test_codegen_fused_schedule () =
  let _, program = helmholtz_program ~p:4 () in
  let proc = Lower.Codegen.generate program (Lower.Reschedule.compute program) in
  check_proc_matches_reference ~p:4 proc

let test_codegen_factorized () =
  let _, program = helmholtz_program ~p:4 ~factorize:true () in
  let proc = Lower.Codegen.generate program (Lower.Reschedule.compute program) in
  check_proc_matches_reference ~p:4 proc

let test_codegen_pointwise_fused () =
  let _, program = helmholtz_program ~p:4 () in
  let options = { Lower.Reschedule.default with Lower.Reschedule.fuse_pointwise = true } in
  let proc =
    Lower.Codegen.generate program (Lower.Reschedule.compute ~options program)
  in
  check_proc_matches_reference ~p:4 proc

let test_codegen_reduction_outer () =
  let _, program = helmholtz_program ~p:3 () in
  let options =
    { Lower.Reschedule.default with Lower.Reschedule.reduction_inner = false }
  in
  let proc =
    Lower.Codegen.generate program (Lower.Reschedule.compute ~options program)
  in
  check_proc_matches_reference ~p:3 proc

let test_codegen_internal_temps () =
  let _, program = helmholtz_program ~p:4 () in
  let options =
    { Lower.Codegen.default with Lower.Codegen.exported_temps = false }
  in
  let proc =
    Lower.Codegen.generate ~options program (Lower.Reschedule.compute program)
  in
  (* t and r become locals: only 4 parameters remain. *)
  Alcotest.(check int) "params" 4 (List.length proc.Loopir.Prog.params);
  Alcotest.(check int) "locals" 2 (List.length proc.Loopir.Prog.locals);
  check_proc_matches_reference ~p:4 proc

let test_codegen_storage_sharing_legal () =
  (* Share u with r, and t with v: the liveness-compatible merges of
     Figure 5. The generated aliased program must still be correct. *)
  let _, program = helmholtz_program ~p:4 () in
  let storage = [ ("u", ("plm_ur", 0)); ("r", ("plm_ur", 0)); ("t", ("plm_tv", 0)); ("v", ("plm_tv", 0)) ] in
  let proc =
    Lower.Codegen.generate ~storage program (Lower.Reschedule.compute program)
  in
  let p = 4 in
  let inputs = Helmholtz.make_inputs ~seed:3 p in
  let bindings =
    [
      ("S", Dense.to_array inputs.Helmholtz.s);
      ("D", Dense.to_array inputs.Helmholtz.d);
      ("plm_ur", Dense.to_array inputs.Helmholtz.u);
    ]
  in
  let results = Loopir.Interp.run_fresh proc ~inputs:bindings in
  let v = List.assoc "plm_tv" results in
  let got = Dense.of_array (Shape.cube 3 p) v in
  let expected = Helmholtz.direct inputs in
  Alcotest.(check bool) "aliased result correct" true
    (Dense.equal ~tol:1e-8 got expected)

let test_codegen_storage_sharing_illegal_detected () =
  (* Sharing u with t is NOT liveness-compatible: u is read while t is
     written. The aliased program must produce a wrong answer — proving
     the functional oracle detects illegal sharing. *)
  let _, program = helmholtz_program ~p:3 () in
  let storage = [ ("u", ("plm_ut", 0)); ("t", ("plm_ut", 0)) ] in
  let proc =
    Lower.Codegen.generate ~storage program (Lower.Reschedule.compute program)
  in
  let p = 3 in
  let inputs = Helmholtz.make_inputs ~seed:3 p in
  let bindings =
    [
      ("S", Dense.to_array inputs.Helmholtz.s);
      ("D", Dense.to_array inputs.Helmholtz.d);
      ("plm_ut", Dense.to_array inputs.Helmholtz.u);
    ]
  in
  let results = Loopir.Interp.run_fresh proc ~inputs:bindings in
  let got = Dense.of_array (Shape.cube 3 p) (List.assoc "v" results) in
  let expected = Helmholtz.direct inputs in
  Alcotest.(check bool) "illegal sharing corrupts result" false
    (Dense.equal ~tol:1e-6 got expected)

let test_codegen_pipeline_pragma () =
  let _, program = helmholtz_program ~p:3 () in
  let proc = Lower.Codegen.generate program (Lower.Schedule.reference program) in
  (* every innermost loop carries the pipeline pragma *)
  let rec innermost_pragmas (s : Loopir.Prog.stmt) acc =
    match s with
    | Loopir.Prog.For l ->
        let has_inner =
          List.exists (function Loopir.Prog.For _ -> true | _ -> false) l.body
        in
        if has_inner then List.fold_left (fun a st -> innermost_pragmas st a) acc l.body
        else l.pragmas :: acc
    | _ -> acc
  in
  let all = List.fold_left (fun a s -> innermost_pragmas s a) [] proc.Loopir.Prog.body in
  Alcotest.(check bool) "at least one innermost loop" true (all <> []);
  List.iter
    (fun pragmas ->
      Alcotest.(check bool) "pipelined" true
        (List.mem (Loopir.Prog.Pipeline 1) pragmas))
    all

let test_codegen_loop_var_collision () =
  (* a tensor named like a generated loop variable must not shadow it *)
  let c =
    Result.get_ok
      (Cfdlang.Check.parse_and_check
         "var input i0 : [3]\nvar input acc0 : [3]\nvar output i1 : [3]\n\
          i1 = i0 * acc0")
  in
  let kernel = Tir.Builder.build ~name:"clash" c in
  let program = Lower.Flow.of_kernel ~name:"clash" kernel in
  let proc =
    Loopir.Scalarize.optimize
      (Lower.Codegen.generate program (Lower.Reschedule.compute program))
  in
  (* no loop variable may equal an array name *)
  let arrays =
    List.map (fun (p : Loopir.Prog.param) -> p.Loopir.Prog.name) proc.Loopir.Prog.params
  in
  let rec loop_vars acc (s : Loopir.Prog.stmt) =
    match s with
    | Loopir.Prog.For l -> List.fold_left loop_vars (l.var :: acc) l.body
    | _ -> acc
  in
  let vars = List.fold_left loop_vars [] proc.Loopir.Prog.body in
  List.iter
    (fun v ->
      Alcotest.(check bool) ("no collision on " ^ v) false (List.mem v arrays))
    vars;
  (* and it still computes the right product *)
  let a = Dense.random ~seed:1 (Shape.create [ 3 ]) in
  let b = Dense.random ~seed:2 (Shape.create [ 3 ]) in
  let results =
    Loopir.Interp.run_fresh proc
      ~inputs:[ ("i0", Dense.to_array a); ("acc0", Dense.to_array b) ]
  in
  let got = Dense.of_array (Shape.create [ 3 ]) (List.assoc "i1" results) in
  Alcotest.(check bool) "correct" true
    (Dense.equal got (Tensor.Ops.hadamard a b))

let test_interpolation_end_to_end () =
  let checked = Cfdlang.Check.check_exn (Cfdlang.Ast.interpolation ~p:4 ()) in
  let kernel = Tir.Builder.build ~name:"interp" checked in
  let program = Lower.Flow.of_kernel ~name:"interp" kernel in
  let proc = Lower.Codegen.generate program (Lower.Reschedule.compute program) in
  let s = Dense.random ~seed:1 (Shape.create [ 4; 4 ]) in
  let u = Dense.random ~seed:2 (Shape.cube 3 4) in
  let results =
    Loopir.Interp.run_fresh proc
      ~inputs:[ ("S", Dense.to_array s); ("u", Dense.to_array u) ]
  in
  let got = Dense.of_array (Shape.cube 3 4) (List.assoc "v" results) in
  Alcotest.(check bool) "interpolation matches" true
    (Dense.equal ~tol:1e-8 got (Helmholtz.interpolation s u))

let qcheck_codegen_option_matrix =
  QCheck.Test.make ~name:"all option combinations produce correct code" ~count:24
    QCheck.(quad bool bool bool (int_range 2 4))
    (fun (fuse_init, fuse_pointwise, factorize, p) ->
      let _, program = helmholtz_program ~p ~factorize () in
      let options =
        {
          Lower.Reschedule.fuse_init;
          fuse_pointwise;
          reduction_inner = true;
          permute = [];
        }
      in
      let sched = Lower.Reschedule.compute ~options program in
      if not (Lower.Schedule.legal program sched) then false
      else begin
        let proc = Lower.Codegen.generate program sched in
        let inputs = Helmholtz.make_inputs ~seed:p p in
        let results =
          Loopir.Interp.run_fresh proc
            ~inputs:
              [
                ("S", Dense.to_array inputs.Helmholtz.s);
                ("D", Dense.to_array inputs.Helmholtz.d);
                ("u", Dense.to_array inputs.Helmholtz.u);
              ]
        in
        let got = Dense.of_array (Shape.cube 3 p) (List.assoc "v" results) in
        Dense.equal ~tol:1e-8 got (Helmholtz.direct inputs)
      end)

(* ---------- Scalarize ---------- *)

let test_scalarize_helmholtz () =
  let _, program = helmholtz_program ~p:4 () in
  let proc = Lower.Codegen.generate program (Lower.Reschedule.compute program) in
  let opt = Loopir.Scalarize.optimize proc in
  (* two contractions, each fused init+mac -> accumulator *)
  Alcotest.(check int) "accumulators" 2 (Loopir.Scalarize.count_accumulators opt);
  check_proc_matches_reference ~p:4 opt

let test_scalarize_noop_on_reference_schedule () =
  (* Unfused init/mac (separate loop nests) cannot scalarize. *)
  let _, program = helmholtz_program ~p:3 () in
  let proc = Lower.Codegen.generate program (Lower.Schedule.reference program) in
  let opt = Loopir.Scalarize.optimize proc in
  Alcotest.(check int) "no accumulators" 0 (Loopir.Scalarize.count_accumulators opt);
  check_proc_matches_reference ~p:3 opt

let test_scalarize_factorized () =
  let _, program = helmholtz_program ~p:4 ~factorize:true () in
  let proc = Lower.Codegen.generate program (Lower.Reschedule.compute program) in
  let opt = Loopir.Scalarize.optimize proc in
  Alcotest.(check int) "six accumulators" 6 (Loopir.Scalarize.count_accumulators opt);
  check_proc_matches_reference ~p:4 opt

(* ---------- C emission ---------- *)

let test_emit_c_structure () =
  let _, program = helmholtz_program ~p:11 () in
  let proc =
    Loopir.Scalarize.optimize
      (Lower.Codegen.generate program (Lower.Reschedule.compute program))
  in
  let c = Loopir.Emit.c_source ~header:"Inverse Helmholtz p=11" proc in
  let has s = Alcotest.(check bool) s true
      (let len_n = String.length s and len_c = String.length c in
       let rec scan i = i + len_n <= len_c && (String.sub c i len_n = s || scan (i + 1)) in
       scan 0)
  in
  has "void helm(";
  has "const double S[121]";
  has "const double u[1331]";
  has "double v[1331]";
  has "double t[1331]";
  has "#pragma HLS pipeline II=1";
  has "for (int"

let test_emit_c_compiles_and_runs () =
  (* Full toolchain check: emit C, compile with gcc, execute, compare with
     the reference — the generated code really is valid C99. *)
  let p = 4 in
  let _, program = helmholtz_program ~p () in
  let proc =
    Loopir.Scalarize.optimize
      (Lower.Codegen.generate program (Lower.Reschedule.compute program))
  in
  let dir = Filename.temp_file "cfd" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let c_path = Filename.concat dir "kernel.c" in
  let main_path = Filename.concat dir "main.c" in
  let exe = Filename.concat dir "kernel" in
  Loopir.Emit.write_file ~path:c_path proc;
  let inputs = Helmholtz.make_inputs ~seed:7 p in
  let emit_array name t =
    let a = Dense.to_array t in
    Printf.sprintf "double %s[%d] = {%s};" name (Array.length a)
      (String.concat ","
         (Array.to_list (Array.map (Printf.sprintf "%.17g") a)))
  in
  let n3 = p * p * p in
  (* Allocate non-input buffers and order the call by the actual
     prototype. *)
  let other_decls =
    List.filter_map
      (fun (prm : Loopir.Prog.param) ->
        if prm.Loopir.Prog.dir = Loopir.Prog.In then None
        else Some (Printf.sprintf "double %s[%d];" prm.Loopir.Prog.name prm.Loopir.Prog.size))
      proc.Loopir.Prog.params
  in
  let call_args =
    String.concat ", "
      (List.map (fun (prm : Loopir.Prog.param) -> prm.Loopir.Prog.name) proc.Loopir.Prog.params)
  in
  let main_src =
    Printf.sprintf
      {|#include <stdio.h>
%s
%s
%s
%s
%s
int main(void) {
  helm(%s);
  for (int i = 0; i < %d; ++i) printf("%%.17g\n", v[i]);
  return 0;
}
|}
      (Loopir.Emit.c_prototype proc)
      (emit_array "S" inputs.Helmholtz.s)
      (emit_array "D" inputs.Helmholtz.d)
      (emit_array "u" inputs.Helmholtz.u)
      (String.concat "\n" other_decls)
      call_args n3
  in
  let oc = open_out main_path in
  output_string oc main_src;
  close_out oc;
  let cmd =
    Printf.sprintf "gcc -std=c99 -O1 -o %s %s %s 2>/dev/null" exe c_path main_path
  in
  if Sys.command cmd <> 0 then Alcotest.fail "gcc failed to compile emitted C"
  else begin
    let ic = Unix.open_process_in exe in
    let values = Array.init n3 (fun _ -> float_of_string (input_line ic)) in
    ignore (Unix.close_process_in ic);
    let got = Dense.of_array (Shape.cube 3 p) values in
    let expected = Helmholtz.direct inputs in
    Alcotest.(check bool) "compiled C matches reference" true
      (Dense.equal ~tol:1e-8 got expected)
  end

let suite =
  [
    ( "lower.flow",
      [
        case "helmholtz structure" test_flow_helmholtz_structure;
        case "array kinds" test_flow_array_kinds;
        case "row-major layout" test_flow_layout_row_major;
        case "operand map (hadamard)" test_flow_operand_map_hadamard;
        case "operand map (contraction)" test_flow_operand_map_contraction;
        case "validate catches bad layout" test_flow_validate_catches_oob;
      ] );
    ( "lower.schedule",
      [
        case "reference valid+legal" test_reference_schedule_valid_and_legal;
        case "timestamp shape" test_schedule_timestamp_shape;
        case "image extrema" test_schedule_image_extrema;
        case "illegal schedule detected" test_illegal_schedule_detected;
        case "fused reschedule legal" test_reschedule_fused_valid_and_legal;
        case "pointwise fusion legal" test_reschedule_pointwise_fusion_legal;
        case "reduction-outer legal" test_reschedule_reduction_outer_legal;
      ] );
    ( "lower.codegen",
      [
        case "reference schedule" test_codegen_reference_schedule;
        case "fused schedule" test_codegen_fused_schedule;
        case "factorized kernel" test_codegen_factorized;
        case "pointwise fused" test_codegen_pointwise_fused;
        case "reduction outer" test_codegen_reduction_outer;
        case "internal temporaries" test_codegen_internal_temps;
        case "storage sharing (legal)" test_codegen_storage_sharing_legal;
        case "storage sharing (illegal detected)" test_codegen_storage_sharing_illegal_detected;
        case "pipeline pragma placement" test_codegen_pipeline_pragma;
        case "loop variable collision" test_codegen_loop_var_collision;
        case "interpolation end-to-end" test_interpolation_end_to_end;
        Test_seed.to_alcotest qcheck_codegen_option_matrix;
      ] );
    ( "loopir.scalarize",
      [
        case "fused helmholtz" test_scalarize_helmholtz;
        case "noop on reference schedule" test_scalarize_noop_on_reference_schedule;
        case "factorized" test_scalarize_factorized;
      ] );
    ( "loopir.emit",
      [
        case "C structure" test_emit_c_structure;
        case "gcc compile & run" test_emit_c_compiles_and_runs;
      ] );
  ]
