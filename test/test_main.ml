let () =
  Alcotest.run "cfd_accel"
    (Test_tensor.suite @ Test_poly.suite @ Test_cfdlang.suite @ Test_tir.suite
    @ Test_lower.suite @ Test_liveness.suite @ Test_layout.suite @ Test_hw.suite
    @ Test_integration.suite @ Test_emit.suite @ Test_extensions.suite
    @ Test_unroll_plm.suite @ Test_golden.suite @ Test_sem.suite
    @ Test_misc.suite @ Test_differential.suite @ Test_analysis.suite
    @ Test_compiled.suite @ Test_obs.suite @ Test_obs_json.suite
    @ Test_memprof.suite @ Test_sim_par.suite @ Test_cost.suite
    @ Test_cache.suite @ Test_flight.suite @ Test_timeline.suite)
