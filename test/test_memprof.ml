(* Dynamic PLM access profiler: the live-interval audit passes on every
   kernel in both memgen modes, reproduces the paper's 31 -> 18 BRAM18
   sharing numbers from observation, catches a forced-illegal storage
   merge with a concrete witness, and costs nothing when disabled. *)

let kernels_dir () =
  if Sys.file_exists "../kernels" then "../kernels" else "kernels"

let kernel_files () =
  Sys.readdir (kernels_dir ())
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cfd")
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compile_kernel ?(options = Cfd_core.Compile.default_options) file =
  match
    Cfd_core.Compile.compile_source ~options
      (read_file (Filename.concat (kernels_dir ()) file))
  with
  | Ok r -> r
  | Error m -> Alcotest.failf "%s: %s" file m

let audit ~mode (r : Cfd_core.Compile.result) =
  Memprof.Audit.run ~scope:Mnemosyne.Memgen.All ~mode r.Cfd_core.Compile.program
    r.Cfd_core.Compile.schedule

(* ------------------------------------------------------------------ *)
(* The audit passes on every kernel, both modes                        *)
(* ------------------------------------------------------------------ *)

let check_clean_audit ~what (a : Memprof.Audit.result) =
  (match a.Memprof.Audit.r_diagnostics with
  | [] -> ()
  | ds ->
      Alcotest.failf "%s: %d diagnostics, first: %s" what (List.length ds)
        (Format.asprintf "%a" Analysis.Diagnostic.pp (List.hd ds)));
  Alcotest.(check bool)
    (what ^ ": executed instances") true
    (a.Memprof.Audit.r_instances > 0);
  Alcotest.(check bool)
    (what ^ ": observed accesses") true
    (a.Memprof.Audit.r_accesses > 0);
  List.iter
    (fun (u : Memprof.Audit.unit_stat) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s occupancy within capacity" what
           u.Memprof.Audit.u_name)
        true
        (u.Memprof.Audit.u_words_touched <= u.Memprof.Audit.u_words);
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s pressure within port budget" what
           u.Memprof.Audit.u_name)
        true
        (u.Memprof.Audit.u_max_pressure <= u.Memprof.Audit.u_port_budget))
    a.Memprof.Audit.r_units;
  (* every array the kernel touches stayed inside its static interval *)
  List.iter
    (fun (o : Memprof.Audit.array_obs) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s observed within static" what
           o.Memprof.Audit.o_array)
        true o.Memprof.Audit.o_contained)
    a.Memprof.Audit.r_arrays

let test_kernel_audit file () =
  let r = compile_kernel file in
  List.iter
    (fun (label, mode) ->
      check_clean_audit ~what:(file ^ " " ^ label) (audit ~mode r))
    [
      ("no-sharing", Mnemosyne.Memgen.No_sharing);
      ("sharing", Mnemosyne.Memgen.Sharing);
    ]

(* ------------------------------------------------------------------ *)
(* Paper numbers: 31 -> 18 BRAM18 on the Inverse Helmholtz             *)
(* ------------------------------------------------------------------ *)

let test_paper_brams () =
  let r = compile_kernel "inverse_helmholtz.cfd" in
  let audits =
    [
      audit ~mode:Mnemosyne.Memgen.No_sharing r;
      audit ~mode:Mnemosyne.Memgen.Sharing r;
    ]
  in
  let report = Memprof.Report.make ~kernel:"inverse_helmholtz" audits in
  Alcotest.(check bool) "audit passed" true (Memprof.Report.passed report);
  match Memprof.Report.savings report with
  | Some (ns, sh, saved) ->
      Alcotest.(check int) "no-sharing BRAM18" 31 ns;
      Alcotest.(check int) "sharing BRAM18" 18 sh;
      Alcotest.(check int) "savings" 13 saved
  | None -> Alcotest.fail "report carries no savings"

(* ------------------------------------------------------------------ *)
(* Mutation: a forced illegal merge must be caught dynamically         *)
(* ------------------------------------------------------------------ *)

(* t and r have overlapping live ranges (r = D .* t reads t in the very
   statement instances that write r), so Mnemosyne would never merge
   them; [~force] bypasses the static check and the dynamic audit must
   observe the conflict. *)
let test_forced_merge_caught () =
  let res = compile_kernel "inverse_helmholtz.cfd" in
  let program = res.Cfd_core.Compile.program
  and schedule = res.Cfd_core.Compile.schedule in
  Alcotest.check_raises "merge is statically illegal"
    (Liveness.Sharing.Illegal
       "merging r and t is illegal: live intervals overlap") (fun () ->
      ignore (Liveness.Sharing.merge_storage program schedule [ ("t", "r") ]));
  let storage =
    Liveness.Sharing.merge_storage ~force:true program schedule [ ("t", "r") ]
  in
  let diags = Memprof.Audit.audit_storage ~storage program schedule in
  Alcotest.(check bool) "audit reports the violation" true (diags <> []);
  let conflict =
    List.filter
      (fun d -> d.Analysis.Diagnostic.rule = "memprof-slot-conflict")
      diags
  in
  Alcotest.(check bool) "a slot-conflict diagnostic fired" true (conflict <> []);
  let d = List.hd conflict in
  Alcotest.(check bool) "diagnostic is an error" true
    (d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error);
  (* the witness names both residents and the overlapping intervals *)
  let msg = Format.asprintf "%a" Analysis.Diagnostic.pp d in
  let mentions s =
    let re = Str.regexp_string s in
    try
      ignore (Str.search_forward re msg 0);
      true
    with Not_found -> false
  in
  Alcotest.(check bool) "witness mentions both arrays" true
    (mentions "r" && mentions "t");
  Alcotest.(check bool) "witness carries the interval overlap" true
    (mentions "overlaps")

(* A clean (unforced, legal) merge on compatible arrays passes. *)
let test_legal_merge_clean () =
  let res = compile_kernel "inverse_helmholtz.cfd" in
  let program = res.Cfd_core.Compile.program
  and schedule = res.Cfd_core.Compile.schedule in
  let storage =
    Liveness.Sharing.merge_storage program schedule [ ("u", "t") ]
  in
  Alcotest.(check (list string)) "legal merge audits clean" []
    (List.map
       (fun d -> d.Analysis.Diagnostic.message)
       (Memprof.Audit.audit_storage ~storage program schedule))

(* ------------------------------------------------------------------ *)
(* Recorder gate: disabled profiling is invisible                      *)
(* ------------------------------------------------------------------ *)

let buffer_of (r : Cfd_core.Compile.result) name =
  match
    List.assoc_opt name r.Cfd_core.Compile.memory.Mnemosyne.Memgen.storage
  with
  | Some (b, off) -> (b, off)
  | None -> (name, 0)

let stage_inputs r engine frame =
  List.iter
    (fun (name, tensor) ->
      let buf, off = buffer_of r name in
      let data = Tensor.Dense.to_array tensor in
      Array.blit data 0
        (Loopir.Compiled.buffer engine frame buf)
        off (Array.length data))
    (Cfdlang.Eval.random_inputs ~seed:7 r.Cfd_core.Compile.checked)

let output_words r engine frame =
  List.concat_map
    (fun (a : Lower.Flow.array_info) ->
      match a.Lower.Flow.kind with
      | Lower.Flow.Output ->
          let buf, off = buffer_of r a.Lower.Flow.array_name in
          Array.to_list
            (Array.sub
               (Loopir.Compiled.buffer engine frame buf)
               off a.Lower.Flow.size)
      | Lower.Flow.Input | Lower.Flow.Temp -> [])
    r.Cfd_core.Compile.program.Lower.Flow.arrays

let test_disabled_recorder_invisible () =
  Memprof.Record.disable ();
  Memprof.Record.reset ();
  let r = compile_kernel "mass.cfd" in
  let proc = r.Cfd_core.Compile.proc in
  (* engine compiled with no provider installed: not instrumented *)
  let plain = Loopir.Compiled.compile ~mode:Loopir.Compiled.Checked proc in
  Alcotest.(check bool) "plain engine carries no probe" false
    (Loopir.Compiled.probed plain);
  let plain_frame = Loopir.Compiled.make_frame plain in
  stage_inputs r plain plain_frame;
  Loopir.Compiled.run plain plain_frame;
  let sn = Memprof.Record.snapshot () in
  Alcotest.(check int) "no accesses recorded while disabled" 0
    sn.Memprof.Record.sn_accesses;
  Alcotest.(check int) "no instances recorded while disabled" 0
    sn.Memprof.Record.sn_instances;
  (* same proc compiled while recording: instrumented, same output *)
  Memprof.Record.enable ();
  Fun.protect
    ~finally:(fun () -> Memprof.Record.disable ())
    (fun () ->
      let rec_engine =
        Loopir.Compiled.compile ~mode:Loopir.Compiled.Checked proc
      in
      Alcotest.(check bool) "recorded engine carries the probe" true
        (Loopir.Compiled.probed rec_engine);
      let rec_frame = Loopir.Compiled.make_frame rec_engine in
      stage_inputs r rec_engine rec_frame;
      Loopir.Compiled.run rec_engine rec_frame;
      Alcotest.(check (list (float 0.0)))
        "outputs bit-identical with recording on/off"
        (output_words r plain plain_frame)
        (output_words r rec_engine rec_frame);
      let sn = Memprof.Record.snapshot () in
      Alcotest.(check bool) "recorded accesses" true
        (sn.Memprof.Record.sn_accesses > 0);
      Alcotest.(check bool) "recorded instances" true
        (sn.Memprof.Record.sn_instances > 0);
      Alcotest.(check bool) "recorded buffers" true
        (sn.Memprof.Record.sn_buffers <> []))

(* Per-word recorder bookkeeping: counts, first-write, last-read and the
   DMA ledger are exact on a hand-checkable engine run. *)
let test_recorder_bookkeeping () =
  let r = compile_kernel "mass.cfd" in
  let proc = r.Cfd_core.Compile.proc in
  Memprof.Record.enable ();
  Fun.protect
    ~finally:(fun () -> Memprof.Record.disable ())
    (fun () ->
      let engine = Loopir.Compiled.compile ~mode:Loopir.Compiled.Checked proc in
      let frame = Loopir.Compiled.make_frame engine in
      stage_inputs r engine frame;
      Loopir.Compiled.run engine frame;
      Memprof.Record.record_dma ~set:0 ~dir:`In ~words:1331;
      Memprof.Record.record_dma ~set:0 ~dir:`Out ~words:1331;
      Memprof.Record.record_dma ~set:3 ~dir:`In ~words:42;
      let sn = Memprof.Record.snapshot () in
      (* mass: one pointwise statement over 11^3 elements, three arrays *)
      Alcotest.(check int) "instances = 11^3" 1331
        sn.Memprof.Record.sn_instances;
      Alcotest.(check int) "accesses = 3 per instance" (3 * 1331)
        sn.Memprof.Record.sn_accesses;
      List.iter
        (fun (b : Memprof.Record.buffer_stats) ->
          Alcotest.(check int)
            (b.Memprof.Record.b_buffer ^ " touches every word")
            1331 b.Memprof.Record.b_words_touched;
          List.iter
            (fun (w : Memprof.Record.word_stats) ->
              Alcotest.(check int)
                (Printf.sprintf "%s word %d accessed once"
                   b.Memprof.Record.b_buffer w.Memprof.Record.w_word)
                1
                (w.Memprof.Record.w_reads + w.Memprof.Record.w_writes);
              match
                (w.Memprof.Record.w_first_write, w.Memprof.Record.w_last_read)
              with
              | Some _, Some _ ->
                  Alcotest.fail "a word is both read-only and write-only here"
              | None, None -> Alcotest.fail "a touched word has no position"
              | _ -> ())
            b.Memprof.Record.b_words)
        sn.Memprof.Record.sn_buffers;
      match sn.Memprof.Record.sn_dma with
      | [ d0; d3 ] ->
          Alcotest.(check int) "set 0" 0 d0.Memprof.Record.d_set;
          Alcotest.(check int) "set 0 in" 1331 d0.Memprof.Record.d_words_in;
          Alcotest.(check int) "set 0 out" 1331 d0.Memprof.Record.d_words_out;
          Alcotest.(check int) "set 3" 3 d3.Memprof.Record.d_set;
          Alcotest.(check int) "set 3 in" 42 d3.Memprof.Record.d_words_in;
          Alcotest.(check int) "set 3 out" 0 d3.Memprof.Record.d_words_out
      | dma -> Alcotest.failf "expected 2 DMA sets, got %d" (List.length dma))

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)
(* ------------------------------------------------------------------ *)

let test_report_json_wellformed () =
  let r = compile_kernel "inverse_helmholtz.cfd" in
  let report =
    Memprof.Report.make ~kernel:"inverse_helmholtz"
      [
        audit ~mode:Mnemosyne.Memgen.No_sharing r;
        audit ~mode:Mnemosyne.Memgen.Sharing r;
      ]
  in
  let reparse what json =
    match Obs.Json.parse (Obs.Json.to_string json) with
    | Ok t -> t
    | Error m -> Alcotest.failf "%s does not parse back: %s" what m
  in
  let t = reparse "report JSON" (Memprof.Report.to_json report) in
  (match Obs.Json.member "audit_passed" t with
  | Some (Obs.Json.Bool true) -> ()
  | _ -> Alcotest.fail "audit_passed missing or false");
  (match Obs.Json.member "no_sharing_brams" t with
  | Some (Obs.Json.Int 31) -> ()
  | _ -> Alcotest.fail "no_sharing_brams <> 31");
  (match Obs.Json.member "sharing_brams" t with
  | Some (Obs.Json.Int 18) -> ()
  | _ -> Alcotest.fail "sharing_brams <> 18");
  (match Obs.Json.member "modes" t with
  | Some (Obs.Json.List [ _; _ ]) -> ()
  | _ -> Alcotest.fail "expected two audited modes");
  let trace = reparse "chrome counters" (Memprof.Report.chrome_counters report) in
  match Obs.Json.member "traceEvents" trace with
  | Some (Obs.Json.List evs) ->
      Alcotest.(check bool) "counter track has events" true (evs <> []);
      List.iter
        (fun e ->
          match Obs.Json.member "ph" e with
          | Some (Obs.Json.String "C") -> ()
          | _ -> Alcotest.fail "every event is a counter (ph:C) event")
        evs
  | _ -> Alcotest.fail "no traceEvents array"

let suite =
  [
    ( "memprof",
      Alcotest.test_case "paper numbers: 31 -> 18 BRAM18 observed" `Quick
        test_paper_brams
      :: Alcotest.test_case "forced illegal merge is caught with witness"
           `Quick test_forced_merge_caught
      :: Alcotest.test_case "legal merge audits clean" `Quick
           test_legal_merge_clean
      :: Alcotest.test_case "disabled recorder is invisible" `Quick
           test_disabled_recorder_invisible
      :: Alcotest.test_case "recorder bookkeeping is exact" `Quick
           test_recorder_bookkeeping
      :: Alcotest.test_case "report JSON and counter tracks well-formed"
           `Quick test_report_json_wellformed
      :: List.map
           (fun file ->
             Alcotest.test_case
               (Printf.sprintf "audit passes: %s (both modes)" file)
               `Slow (test_kernel_audit file))
           (kernel_files ()) );
  ]
