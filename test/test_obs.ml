(* Observability layer: span discipline under exceptions, domain-merged
   counters, Chrome-trace export well-formedness, and zero impact on
   compiler output when tracing is disabled. *)

(* Tracing state is process-global; every test restores disabled+empty
   so the rest of the suite (and golden output tests) see the seed
   behaviour. *)
let with_tracing f =
  Obs.Trace.set_enabled true;
  Obs.Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.reset ())
    f

exception Boom

let find_event name evs =
  match List.find_opt (fun e -> e.Obs.Trace.ev_name = name) evs with
  | Some e -> e
  | None -> Alcotest.failf "no event named %s" name

let test_span_balance_under_exceptions () =
  with_tracing (fun () ->
      (try
         Obs.Trace.with_span "outer" (fun () ->
             Obs.Trace.with_span "inner" (fun () -> raise Boom))
       with Boom -> ());
      Obs.Trace.with_span "after" (fun () -> ());
      let evs = Obs.Trace.events () in
      Alcotest.(check int) "all three spans closed" 3 (List.length evs);
      let outer = find_event "outer" evs
      and inner = find_event "inner" evs
      and after = find_event "after" evs in
      Alcotest.(check int) "outer is top-level" 0 outer.Obs.Trace.ev_depth;
      Alcotest.(check int) "inner nests under outer" 1 inner.Obs.Trace.ev_depth;
      (* the exception unwound both spans, so depth is back to 0 *)
      Alcotest.(check int) "depth restored after unwind" 0
        after.Obs.Trace.ev_depth;
      Alcotest.(check bool) "inner carries the error attr" true
        (List.mem_assoc "error" inner.Obs.Trace.ev_attrs);
      Alcotest.(check bool) "outer carries the error attr" true
        (List.mem_assoc "error" outer.Obs.Trace.ev_attrs);
      (* interval containment: outer brackets inner *)
      Alcotest.(check bool) "outer starts before inner" true
        (outer.Obs.Trace.ev_ts <= inner.Obs.Trace.ev_ts);
      Alcotest.(check bool) "outer ends after inner" true
        (outer.Obs.Trace.ev_ts +. outer.Obs.Trace.ev_dur
        >= inner.Obs.Trace.ev_ts +. inner.Obs.Trace.ev_dur))

let test_with_span_reraises () =
  with_tracing (fun () ->
      Alcotest.check_raises "exception propagates" Boom (fun () ->
          Obs.Trace.with_span "raiser" (fun () -> raise Boom)))

(* Counter updates merge across worker domains: the total is
   order-independent and jobs:4 agrees with jobs:1. *)
let test_counters_domain_merged () =
  let c = Obs.Metrics.counter "test.obs.merged" in
  let items = List.init 40 (fun i -> i + 1) in
  let run jobs =
    let before = Obs.Metrics.counter_value c in
    List.iter
      (function
        | Ok () -> ()
        | Error e -> Alcotest.failf "pool failed: %s" e.Parallel.Pool.message)
      (Parallel.Pool.map ~jobs (fun i -> Obs.Metrics.add c i) items);
    Obs.Metrics.counter_value c - before
  in
  let expected = List.fold_left ( + ) 0 items in
  let seq = run 1 in
  Alcotest.(check int) "jobs:1 total" expected seq;
  List.iter
    (fun jobs ->
      Alcotest.(check int)
        (Printf.sprintf "jobs:%d equals jobs:1" jobs)
        seq (run jobs))
    [ 2; 4 ]

let number k e =
  match Obs.Json.member k e with
  | Some (Obs.Json.Float f) -> f
  | Some (Obs.Json.Int i) -> float_of_int i
  | _ -> Alcotest.failf "event missing numeric %S" k

(* The exported Chrome trace round-trips through our own parser and has
   strictly monotone ts per tid, including events recorded by worker
   domains. *)
let test_chrome_trace_wellformed () =
  with_tracing (fun () ->
      List.iter
        (function
          | Ok _ -> ()
          | Error e -> Alcotest.failf "pool failed: %s" e.Parallel.Pool.message)
        (Parallel.Pool.map ~jobs:4
           (fun i -> Obs.Trace.with_span "worker-span" (fun () -> i * i))
           (List.init 12 (fun i -> i)));
      let rendered = Obs.Json.to_string (Obs.Export.chrome_trace ()) in
      let t =
        match Obs.Json.parse rendered with
        | Ok t -> t
        | Error msg -> Alcotest.failf "trace does not parse back: %s" msg
      in
      let evs =
        match Obs.Json.member "traceEvents" t with
        | Some (Obs.Json.List evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check bool) "trace has events" true (evs <> []);
      let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun e ->
          (match Obs.Json.member "ph" e with
          | Some (Obs.Json.String "X") -> ()
          | _ -> Alcotest.fail "every event is a complete (ph:X) event");
          Alcotest.(check bool) "dur is non-negative" true (number "dur" e >= 0.);
          let tid = int_of_float (number "tid" e) in
          let ts = number "ts" e in
          (match Hashtbl.find_opt last_ts tid with
          | Some prev ->
              Alcotest.(check bool)
                (Printf.sprintf "ts strictly monotone on tid %d" tid)
                true (ts > prev)
          | None -> ());
          Hashtbl.replace last_ts tid ts)
        evs;
      Alcotest.(check bool) "several tids recorded" true
        (Hashtbl.length last_ts > 1))

(* Metrics JSON export round-trips and carries registered counters. *)
let test_metrics_export () =
  let c = Obs.Metrics.counter "test.obs.export.hits" in
  Obs.Metrics.add c 3;
  let h = Obs.Metrics.histogram "test.obs.export.hist" in
  Obs.Metrics.observe h 2.0;
  Obs.Metrics.observe h 4.0;
  let rendered = Obs.Json.to_string (Obs.Export.metrics ()) in
  let t =
    match Obs.Json.parse rendered with
    | Ok t -> t
    | Error msg -> Alcotest.failf "metrics does not parse back: %s" msg
  in
  (match Obs.Json.member "counters" t with
  | Some (Obs.Json.Obj counters) ->
      (match List.assoc_opt "test.obs.export.hits" counters with
      | Some (Obs.Json.Int n) ->
          Alcotest.(check bool) "counter exported" true (n >= 3)
      | _ -> Alcotest.fail "counter missing from export")
  | _ -> Alcotest.fail "no counters object");
  match Obs.Json.member "histograms" t with
  | Some (Obs.Json.Obj hists) ->
      Alcotest.(check bool) "histogram exported" true
        (List.mem_assoc "test.obs.export.hist" hists)
  | _ -> Alcotest.fail "no histograms object"

(* With tracing disabled the instrumented compiler records nothing and
   produces bit-identical output to a traced run. *)
let test_disabled_is_invisible () =
  Obs.Trace.set_enabled false;
  Obs.Trace.reset ();
  let ast = Cfdlang.Operators.laplacian ~p:5 () in
  let off = Cfd_core.Compile.compile ast in
  Alcotest.(check int) "no events recorded while disabled" 0
    (List.length (Obs.Trace.events ()));
  let on = with_tracing (fun () -> Cfd_core.Compile.compile ast) in
  Alcotest.(check string) "C source bit-identical with tracing on/off"
    off.Cfd_core.Compile.c_source on.Cfd_core.Compile.c_source;
  Alcotest.(check string) "metadata bit-identical with tracing on/off"
    off.Cfd_core.Compile.mnemosyne_metadata
    on.Cfd_core.Compile.mnemosyne_metadata

(* A traced compile produces one span per stage, bracketed by the
   enclosing "compile" span. *)
let test_compile_stage_spans () =
  with_tracing (fun () ->
      ignore
        (Cfd_core.Compile.compile
           ~options:
             {
               Cfd_core.Compile.default_options with
               Cfd_core.Compile.static_check = true;
             }
           (Cfdlang.Operators.mass ~p:4 ()));
      let evs = Obs.Trace.events () in
      let names = List.map (fun e -> e.Obs.Trace.ev_name) evs in
      List.iter
        (fun stage ->
          Alcotest.(check bool) (stage ^ " span present") true
            (List.mem stage names))
        [
          "compile"; "compile.frontend"; "compile.tir"; "compile.lower";
          "compile.liveness"; "compile.mnemosyne"; "compile.codegen";
          "compile.hls"; "compile.static-check";
        ];
      let root = find_event "compile" evs in
      List.iter
        (fun e ->
          if e.Obs.Trace.ev_name <> "compile" then
            Alcotest.(check bool)
              (e.Obs.Trace.ev_name ^ " inside compile") true
              (e.Obs.Trace.ev_ts >= root.Obs.Trace.ev_ts
              && e.Obs.Trace.ev_ts +. e.Obs.Trace.ev_dur
                 <= root.Obs.Trace.ev_ts +. root.Obs.Trace.ev_dur
                    +. 1e-6))
        evs)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "span balance and nesting under exceptions" `Quick
          test_span_balance_under_exceptions;
        Alcotest.test_case "with_span re-raises" `Quick test_with_span_reraises;
        Alcotest.test_case "counters merge across domains" `Quick
          test_counters_domain_merged;
        Alcotest.test_case "chrome trace is well-formed" `Quick
          test_chrome_trace_wellformed;
        Alcotest.test_case "metrics export round-trips" `Quick
          test_metrics_export;
        Alcotest.test_case "disabled tracing is invisible" `Quick
          test_disabled_is_invisible;
        Alcotest.test_case "compile emits stage spans" `Quick
          test_compile_stage_spans;
      ] );
  ]
