(* Observability layer: span discipline under exceptions, domain-merged
   counters, Chrome-trace export well-formedness, and zero impact on
   compiler output when tracing is disabled. *)

(* Tracing state is process-global; every test restores disabled+empty
   so the rest of the suite (and golden output tests) see the seed
   behaviour. *)
let with_tracing f =
  Obs.Trace.set_enabled true;
  Obs.Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.reset ())
    f

exception Boom

let find_event name evs =
  match List.find_opt (fun e -> e.Obs.Trace.ev_name = name) evs with
  | Some e -> e
  | None -> Alcotest.failf "no event named %s" name

let test_span_balance_under_exceptions () =
  with_tracing (fun () ->
      (try
         Obs.Trace.with_span "outer" (fun () ->
             Obs.Trace.with_span "inner" (fun () -> raise Boom))
       with Boom -> ());
      Obs.Trace.with_span "after" (fun () -> ());
      let evs = Obs.Trace.events () in
      Alcotest.(check int) "all three spans closed" 3 (List.length evs);
      let outer = find_event "outer" evs
      and inner = find_event "inner" evs
      and after = find_event "after" evs in
      Alcotest.(check int) "outer is top-level" 0 outer.Obs.Trace.ev_depth;
      Alcotest.(check int) "inner nests under outer" 1 inner.Obs.Trace.ev_depth;
      (* the exception unwound both spans, so depth is back to 0 *)
      Alcotest.(check int) "depth restored after unwind" 0
        after.Obs.Trace.ev_depth;
      Alcotest.(check bool) "inner carries the error attr" true
        (List.mem_assoc "error" inner.Obs.Trace.ev_attrs);
      Alcotest.(check bool) "outer carries the error attr" true
        (List.mem_assoc "error" outer.Obs.Trace.ev_attrs);
      (* interval containment: outer brackets inner *)
      Alcotest.(check bool) "outer starts before inner" true
        (outer.Obs.Trace.ev_ts <= inner.Obs.Trace.ev_ts);
      Alcotest.(check bool) "outer ends after inner" true
        (outer.Obs.Trace.ev_ts +. outer.Obs.Trace.ev_dur
        >= inner.Obs.Trace.ev_ts +. inner.Obs.Trace.ev_dur))

let test_with_span_reraises () =
  with_tracing (fun () ->
      Alcotest.check_raises "exception propagates" Boom (fun () ->
          Obs.Trace.with_span "raiser" (fun () -> raise Boom)))

(* Counter updates merge across worker domains: the total is
   order-independent and jobs:4 agrees with jobs:1. *)
let test_counters_domain_merged () =
  let c = Obs.Metrics.counter "test.obs.merged" in
  let items = List.init 40 (fun i -> i + 1) in
  let run jobs =
    let before = Obs.Metrics.counter_value c in
    List.iter
      (function
        | Ok () -> ()
        | Error e -> Alcotest.failf "pool failed: %s" e.Parallel.Pool.message)
      (Parallel.Pool.map ~jobs (fun i -> Obs.Metrics.add c i) items);
    Obs.Metrics.counter_value c - before
  in
  let expected = List.fold_left ( + ) 0 items in
  let seq = run 1 in
  Alcotest.(check int) "jobs:1 total" expected seq;
  List.iter
    (fun jobs ->
      Alcotest.(check int)
        (Printf.sprintf "jobs:%d equals jobs:1" jobs)
        seq (run jobs))
    [ 2; 4 ]

let number k e =
  match Obs.Json.member k e with
  | Some (Obs.Json.Float f) -> f
  | Some (Obs.Json.Int i) -> float_of_int i
  | _ -> Alcotest.failf "event missing numeric %S" k

(* The exported Chrome trace round-trips through our own parser and has
   strictly monotone ts per tid, including events recorded by worker
   domains. *)
let test_chrome_trace_wellformed () =
  with_tracing (fun () ->
      List.iter
        (function
          | Ok _ -> ()
          | Error e -> Alcotest.failf "pool failed: %s" e.Parallel.Pool.message)
        (Parallel.Pool.map ~jobs:4
           (fun i -> Obs.Trace.with_span "worker-span" (fun () -> i * i))
           (List.init 12 (fun i -> i)));
      let rendered = Obs.Json.to_string (Obs.Export.chrome_trace ()) in
      let t =
        match Obs.Json.parse rendered with
        | Ok t -> t
        | Error msg -> Alcotest.failf "trace does not parse back: %s" msg
      in
      let evs =
        match Obs.Json.member "traceEvents" t with
        | Some (Obs.Json.List evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check bool) "trace has events" true (evs <> []);
      let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
      let counter_tracks = ref [] in
      List.iter
        (fun e ->
          match Obs.Json.member "ph" e with
          | Some (Obs.Json.String "X") ->
              Alcotest.(check bool)
                "dur is non-negative" true (number "dur" e >= 0.);
              let tid = int_of_float (number "tid" e) in
              let ts = number "ts" e in
              (match Hashtbl.find_opt last_ts tid with
              | Some prev ->
                  Alcotest.(check bool)
                    (Printf.sprintf "ts strictly monotone on tid %d" tid)
                    true (ts > prev)
              | None -> ());
              Hashtbl.replace last_ts tid ts
          | Some (Obs.Json.String "C") -> (
              (* final-value counter samples: cache.*, pool.tasks *)
              (match Obs.Json.member "name" e with
              | Some (Obs.Json.String n) ->
                  counter_tracks := n :: !counter_tracks
              | _ -> Alcotest.fail "counter sample has no name");
              match Obs.Json.member "args" e with
              | Some (Obs.Json.Obj [ ("value", Obs.Json.Int _) ]) -> ()
              | _ -> Alcotest.fail "counter sample args is {value: int}")
          | _ -> Alcotest.fail "every event is a span (ph:X) or counter (ph:C)")
        evs;
      Alcotest.(check bool) "several tids recorded" true
        (Hashtbl.length last_ts > 1);
      (* the pool ran, so its task counter must be exported as a track *)
      Alcotest.(check bool) "pool.tasks counter track present" true
        (List.mem "pool.tasks" !counter_tracks))

(* Metrics JSON export round-trips and carries registered counters. *)
let test_metrics_export () =
  let c = Obs.Metrics.counter "test.obs.export.hits" in
  Obs.Metrics.add c 3;
  let h = Obs.Metrics.histogram "test.obs.export.hist" in
  Obs.Metrics.observe h 2.0;
  Obs.Metrics.observe h 4.0;
  let rendered = Obs.Json.to_string (Obs.Export.metrics ()) in
  let t =
    match Obs.Json.parse rendered with
    | Ok t -> t
    | Error msg -> Alcotest.failf "metrics does not parse back: %s" msg
  in
  (match Obs.Json.member "counters" t with
  | Some (Obs.Json.Obj counters) ->
      (match List.assoc_opt "test.obs.export.hits" counters with
      | Some (Obs.Json.Int n) ->
          Alcotest.(check bool) "counter exported" true (n >= 3)
      | _ -> Alcotest.fail "counter missing from export")
  | _ -> Alcotest.fail "no counters object");
  match Obs.Json.member "histograms" t with
  | Some (Obs.Json.Obj hists) ->
      Alcotest.(check bool) "histogram exported" true
        (List.mem_assoc "test.obs.export.hist" hists)
  | _ -> Alcotest.fail "no histograms object"

(* With tracing disabled the instrumented compiler records nothing and
   produces bit-identical output to a traced run. *)
let test_disabled_is_invisible () =
  Obs.Trace.set_enabled false;
  Obs.Trace.reset ();
  let ast = Cfdlang.Operators.laplacian ~p:5 () in
  let off = Cfd_core.Compile.compile ast in
  Alcotest.(check int) "no events recorded while disabled" 0
    (List.length (Obs.Trace.events ()));
  let on = with_tracing (fun () -> Cfd_core.Compile.compile ast) in
  Alcotest.(check string) "C source bit-identical with tracing on/off"
    off.Cfd_core.Compile.c_source on.Cfd_core.Compile.c_source;
  Alcotest.(check string) "metadata bit-identical with tracing on/off"
    off.Cfd_core.Compile.mnemosyne_metadata
    on.Cfd_core.Compile.mnemosyne_metadata

(* A traced compile produces one span per stage, bracketed by the
   enclosing "compile" span. *)
let test_compile_stage_spans () =
  with_tracing (fun () ->
      ignore
        (Cfd_core.Compile.compile
           ~options:
             {
               Cfd_core.Compile.default_options with
               Cfd_core.Compile.static_check = true;
             }
           (Cfdlang.Operators.mass ~p:4 ()));
      let evs = Obs.Trace.events () in
      let names = List.map (fun e -> e.Obs.Trace.ev_name) evs in
      List.iter
        (fun stage ->
          Alcotest.(check bool) (stage ^ " span present") true
            (List.mem stage names))
        [
          "compile"; "compile.frontend"; "compile.tir"; "compile.lower";
          "compile.liveness"; "compile.mnemosyne"; "compile.codegen";
          "compile.hls"; "compile.static-check";
        ];
      let root = find_event "compile" evs in
      List.iter
        (fun e ->
          if e.Obs.Trace.ev_name <> "compile" then
            Alcotest.(check bool)
              (e.Obs.Trace.ev_name ^ " inside compile") true
              (e.Obs.Trace.ev_ts >= root.Obs.Trace.ev_ts
              && e.Obs.Trace.ev_ts +. e.Obs.Trace.ev_dur
                 <= root.Obs.Trace.ev_ts +. root.Obs.Trace.ev_dur
                    +. 1e-6))
        evs)

(* --- histogram percentiles --------------------------------------------- *)

(* A constant-valued histogram reports the exact value at every
   percentile: the bucket estimate is clamped to [min, max] = {v}. *)
let test_percentiles_constant () =
  let h = Obs.Metrics.histogram "test.obs.pct.const" in
  for _ = 1 to 50 do
    Obs.Metrics.observe h 7.25
  done;
  let s = Obs.Metrics.histogram_snapshot h in
  Alcotest.(check (float 0.0)) "p50 exact" 7.25 s.Obs.Metrics.h_p50;
  Alcotest.(check (float 0.0)) "p95 exact" 7.25 s.Obs.Metrics.h_p95;
  Alcotest.(check (float 0.0)) "p99 exact" 7.25 s.Obs.Metrics.h_p99

(* Geometric buckets (two per octave) estimate any quantile to within a
   factor of sqrt(2), clamped into the observed range. *)
let test_percentiles_tolerance () =
  let h = Obs.Metrics.histogram "test.obs.pct.range" in
  for i = 1 to 1000 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  let s = Obs.Metrics.histogram_snapshot h in
  let sqrt2 = sqrt 2.0 in
  List.iter
    (fun (label, est, true_q) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s within sqrt(2) of %g (got %g)" label true_q est)
        true
        (est >= true_q /. sqrt2 && est <= true_q *. sqrt2);
      Alcotest.(check bool)
        (label ^ " within observed range") true
        (est >= s.Obs.Metrics.h_min && est <= s.Obs.Metrics.h_max))
    [
      ("p50", s.Obs.Metrics.h_p50, 500.);
      ("p95", s.Obs.Metrics.h_p95, 950.);
      ("p99", s.Obs.Metrics.h_p99, 990.);
    ];
  Alcotest.(check bool) "percentiles ordered" true
    (s.Obs.Metrics.h_p50 <= s.Obs.Metrics.h_p95
    && s.Obs.Metrics.h_p95 <= s.Obs.Metrics.h_p99)

let member_exn what k t =
  match Obs.Json.member k t with
  | Some v -> v
  | None -> Alcotest.failf "%s: missing %S" what k

let histogram_export name =
  member_exn name name (member_exn name "histograms" (Obs.Export.metrics ()))

(* An empty histogram has nan percentiles; the exporters must render
   that as JSON null and a summary "(empty)", never the string nan. *)
let test_percentiles_empty () =
  let h = Obs.Metrics.histogram "test.obs.pct.empty" in
  let s = Obs.Metrics.histogram_snapshot h in
  Alcotest.(check int) "count 0" 0 s.Obs.Metrics.h_count;
  List.iter
    (fun (label, v) ->
      Alcotest.(check bool) (label ^ " is nan when empty") true (Float.is_nan v))
    [
      ("min", s.Obs.Metrics.h_min); ("max", s.Obs.Metrics.h_max);
      ("p50", s.Obs.Metrics.h_p50); ("p95", s.Obs.Metrics.h_p95);
      ("p99", s.Obs.Metrics.h_p99);
    ];
  let j = histogram_export "test.obs.pct.empty" in
  List.iter
    (fun k ->
      match Obs.Json.member k j with
      | Some Obs.Json.Null -> ()
      | Some v ->
          Alcotest.failf "empty histogram %s exported as %s, not null" k
            (Obs.Json.to_string v)
      | None -> Alcotest.failf "histogram JSON missing %S" k)
    [ "min"; "max"; "mean"; "p50"; "p95"; "p99" ]

(* Populated histograms carry their percentile estimates into the
   metrics JSON. *)
let test_percentiles_exported () =
  let h = Obs.Metrics.histogram "test.obs.pct.json" in
  List.iter (Obs.Metrics.observe h) [ 3.0; 3.0; 3.0; 3.0 ];
  let j = histogram_export "test.obs.pct.json" in
  List.iter
    (fun k ->
      match Obs.Json.member k j with
      | Some (Obs.Json.Float v) ->
          Alcotest.(check (float 0.0)) (k ^ " exported") 3.0 v
      | Some v ->
          Alcotest.failf "%s exported as %s" k (Obs.Json.to_string v)
      | None -> Alcotest.failf "histogram JSON missing %S" k)
    [ "p50"; "p95"; "p99" ]

(* --- human-summary guards ---------------------------------------------- *)

let summary_lines () =
  String.split_on_char '\n' (Format.asprintf "%a" Obs.Export.pp_summary ())

let find_line needle =
  let re = Str.regexp_string needle in
  match
    List.find_opt
      (fun l ->
        try
          ignore (Str.search_forward re l 0);
          true
        with Not_found -> false)
      (summary_lines ())
  with
  | Some l -> l
  | None -> Alcotest.failf "no summary line mentions %S" needle

let contains ~needle hay =
  try
    ignore (Str.search_forward (Str.regexp_string needle) hay 0);
    true
  with Not_found -> false

(* Each guarded path of the summary: a non-finite gauge prints n/a, a
   zero-traffic cache prints a 0.0% rate, an empty histogram prints
   (empty) — never nan or inf. *)
let test_summary_guards () =
  Obs.Metrics.set_gauge (Obs.Metrics.gauge "test.obs.guard.gauge") Float.nan;
  ignore (Obs.Metrics.counter "test.obs.guard.cache.hits");
  ignore (Obs.Metrics.counter "test.obs.guard.cache.misses");
  ignore (Obs.Metrics.histogram "test.obs.guard.hist");
  let gauge_line = find_line "test.obs.guard.gauge" in
  Alcotest.(check bool) "nan gauge renders n/a" true
    (contains ~needle:"n/a" gauge_line);
  Alcotest.(check bool) "nan gauge does not print nan" false
    (contains ~needle:"nan" gauge_line);
  let cache_line = find_line "test.obs.guard.cache" in
  Alcotest.(check bool) "0/0 cache rate is 0.0%" true
    (contains ~needle:"0.0%" cache_line);
  Alcotest.(check bool) "cache rate is not nan" false
    (contains ~needle:"nan" cache_line);
  let hist_line = find_line "test.obs.guard.hist" in
  Alcotest.(check bool) "empty histogram renders (empty)" true
    (contains ~needle:"(empty)" hist_line);
  (* an infinite gauge is guarded the same way *)
  Obs.Metrics.set_gauge
    (Obs.Metrics.gauge "test.obs.guard.gauge-inf")
    Float.infinity;
  let inf_line = find_line "test.obs.guard.gauge-inf" in
  Alcotest.(check bool) "inf gauge renders n/a" true
    (contains ~needle:"n/a" inf_line);
  Alcotest.(check bool) "inf gauge does not print inf" false
    (contains ~needle:"  inf" inf_line)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "span balance and nesting under exceptions" `Quick
          test_span_balance_under_exceptions;
        Alcotest.test_case "with_span re-raises" `Quick test_with_span_reraises;
        Alcotest.test_case "counters merge across domains" `Quick
          test_counters_domain_merged;
        Alcotest.test_case "chrome trace is well-formed" `Quick
          test_chrome_trace_wellformed;
        Alcotest.test_case "metrics export round-trips" `Quick
          test_metrics_export;
        Alcotest.test_case "disabled tracing is invisible" `Quick
          test_disabled_is_invisible;
        Alcotest.test_case "compile emits stage spans" `Quick
          test_compile_stage_spans;
        Alcotest.test_case "constant histogram percentiles exact" `Quick
          test_percentiles_constant;
        Alcotest.test_case "percentiles within sqrt(2)" `Quick
          test_percentiles_tolerance;
        Alcotest.test_case "empty histogram percentiles are null/n-a" `Quick
          test_percentiles_empty;
        Alcotest.test_case "percentiles exported in metrics JSON" `Quick
          test_percentiles_exported;
        Alcotest.test_case "summary guards: no nan/inf ever printed" `Quick
          test_summary_guards;
      ] );
  ]
