(* Obs.Json round-trip property: [parse (to_string t)] reproduces [t]
   exactly, for arbitrary trees — string escapes (control characters,
   quotes, backslashes, multi-byte UTF-8), deep nesting, integer
   extremes and floats down to bit equality (the printer emits 17
   significant digits, the shortest precision that round-trips every
   finite double). *)

let rec strip_non_finite (t : Obs.Json.t) : Obs.Json.t =
  (* the printer renders NaN/infinity as null, so the identity only
     holds for finite floats; generators below produce finite ones and
     this normalization documents the exception *)
  match t with
  | Obs.Json.Float f when not (Float.is_finite f) -> Obs.Json.Null
  | Obs.Json.List l -> Obs.Json.List (List.map strip_non_finite l)
  | Obs.Json.Obj kvs ->
      Obs.Json.Obj (List.map (fun (k, v) -> (k, strip_non_finite v)) kvs)
  | t -> t

(* Structural equality with floats compared by bit pattern, so that
   0.0 <> -0.0 and every finite double must survive the text form. *)
let rec json_eq (a : Obs.Json.t) (b : Obs.Json.t) =
  match (a, b) with
  | Obs.Json.Float x, Obs.Json.Float y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Obs.Json.List xs, Obs.Json.List ys ->
      List.length xs = List.length ys && List.for_all2 json_eq xs ys
  | Obs.Json.Obj xs, Obs.Json.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_eq v1 v2)
           xs ys
  | a, b -> a = b

let rec pp_json ppf (t : Obs.Json.t) =
  match t with
  | Obs.Json.Float f -> Format.fprintf ppf "Float %h" f
  | Obs.Json.String s -> Format.fprintf ppf "String %S" s
  | Obs.Json.List l ->
      Format.fprintf ppf "[%a]" (Format.pp_print_list pp_json) l
  | Obs.Json.Obj kvs ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list (fun ppf (k, v) ->
             Format.fprintf ppf "%S: %a" k pp_json v))
        kvs
  | t -> Format.fprintf ppf "%s" (Obs.Json.to_string t)

(* --- generators -------------------------------------------------------- *)

(* Strings that stress the escaper: every control character, the two
   JSON escape-mandatory characters, some printable ASCII and multi-byte
   UTF-8 sequences (the printer passes non-ASCII bytes through). *)
let gen_string =
  QCheck.Gen.(
    let special =
      oneofl
        [ "\""; "\\"; "\n"; "\r"; "\t"; "\x00"; "\x01"; "\x1f"; "\x7f";
          "\xc3\xa9" (* é *); "\xe2\x82\xac" (* € *); "/"; " " ]
    in
    let piece = oneof [ special; map (String.make 1) printable ] in
    map (String.concat "") (list_size (int_bound 12) piece))

let gen_float =
  QCheck.Gen.(
    oneof
      [
        oneofl
          [ 0.0; -0.0; 1.0; -1.5; Float.epsilon; Float.min_float;
            Float.max_float; 1e-300; 1e300; 0.1; 1.0 /. 3.0; Float.pi ];
        float;
        (* uniformly random bit patterns, masked down to finite values *)
        map
          (fun bits ->
            let f = Int64.float_of_bits bits in
            if Float.is_finite f then f else Float.of_int (Int64.to_int bits))
          int64;
      ])

let gen_int =
  QCheck.Gen.(
    oneof [ oneofl [ 0; 1; -1; max_int; min_int; max_int - 1; min_int + 1 ]; int ])

let gen_json =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let scalar =
          oneof
            [
              return Obs.Json.Null;
              map (fun b -> Obs.Json.Bool b) bool;
              map (fun i -> Obs.Json.Int i) gen_int;
              map (fun f -> Obs.Json.Float f) gen_float;
              map (fun s -> Obs.Json.String s) gen_string;
            ]
        in
        if n <= 0 then scalar
        else
          (* deep, narrow trees: nesting is the recursion stressor *)
          oneof
            [
              scalar;
              map
                (fun l -> Obs.Json.List l)
                (list_size (int_bound 4) (self (n / 2)));
              map
                (fun kvs -> Obs.Json.Obj kvs)
                (list_size (int_bound 4)
                   (pair gen_string (self (n / 2))));
              (* a 1-wide chain doubles the effective depth *)
              map (fun t -> Obs.Json.List [ t ]) (self (n - 1));
            ]))

let arbitrary_json =
  QCheck.make ~print:(Format.asprintf "%a" pp_json) gen_json

let qcheck_roundtrip =
  QCheck.Test.make ~name:"parse (to_string t) = t" ~count:1000 arbitrary_json
    (fun t ->
      let t = strip_non_finite t in
      match Obs.Json.parse (Obs.Json.to_string t) with
      | Ok t' -> json_eq t t'
      | Error msg ->
          QCheck.Test.fail_reportf "does not parse back: %s@.%a" msg pp_json t)

let qcheck_float_roundtrip =
  QCheck.Test.make ~name:"every finite float round-trips to the same bits"
    ~count:2000
    (QCheck.make ~print:(Printf.sprintf "%h") gen_float)
    (fun f ->
      QCheck.assume (Float.is_finite f);
      match Obs.Json.parse (Obs.Json.to_string (Obs.Json.Float f)) with
      | Ok (Obs.Json.Float f') ->
          Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f')
      | Ok (Obs.Json.Int i) ->
          (* integral-valued floats may parse as ints; value must agree *)
          Float.equal (Float.of_int i) f
      | Ok t ->
          QCheck.Test.fail_reportf "parsed to non-number %s" (Obs.Json.to_string t)
      | Error msg -> QCheck.Test.fail_reportf "does not parse: %s" msg)

(* Directed cases the generators could miss. *)
let test_escape_corpus () =
  List.iter
    (fun s ->
      let t = Obs.Json.String s in
      match Obs.Json.parse (Obs.Json.to_string t) with
      | Ok (Obs.Json.String s') ->
          Alcotest.(check string) (Printf.sprintf "%S survives" s) s s'
      | Ok _ -> Alcotest.failf "%S parsed to a non-string" s
      | Error msg -> Alcotest.failf "%S does not parse back: %s" s msg)
    [
      ""; "\""; "\\"; "\\\\"; "\\\""; "a\"b\\c"; "\n\r\t\b\x0c";
      String.init 32 Char.chr; "\xf0\x9f\x90\xab" (* 4-byte UTF-8 *);
      String.make 4096 '\\';
    ]

let test_deep_nesting () =
  let deep n =
    let rec go n acc = if n = 0 then acc else go (n - 1) (Obs.Json.List [ acc ]) in
    go n (Obs.Json.Int 42)
  in
  let t = deep 2000 in
  match Obs.Json.parse (Obs.Json.to_string t) with
  | Ok t' -> Alcotest.(check bool) "2000-deep list survives" true (json_eq t t')
  | Error msg -> Alcotest.failf "deep nesting does not parse back: %s" msg

let test_int_extremes () =
  List.iter
    (fun i ->
      match Obs.Json.parse (Obs.Json.to_string (Obs.Json.Int i)) with
      | Ok (Obs.Json.Int i') ->
          Alcotest.(check int) (Printf.sprintf "%d survives" i) i i'
      | Ok t ->
          Alcotest.failf "%d parsed back as %s" i (Obs.Json.to_string t)
      | Error msg -> Alcotest.failf "%d does not parse back: %s" i msg)
    [ 0; 1; -1; max_int; min_int; max_int - 1; min_int + 1; 1 lsl 53; -(1 lsl 53) ]

let test_non_finite_renders_null () =
  List.iter
    (fun f ->
      Alcotest.(check string)
        (Printf.sprintf "%h renders null" f)
        "null"
        (Obs.Json.to_string (Obs.Json.Float f)))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let suite =
  [
    ( "obs-json",
      [
        Test_seed.to_alcotest qcheck_roundtrip;
        Test_seed.to_alcotest qcheck_float_roundtrip;
        Alcotest.test_case "escape corpus round-trips" `Quick test_escape_corpus;
        Alcotest.test_case "deep nesting round-trips" `Quick test_deep_nesting;
        Alcotest.test_case "int extremes round-trip" `Quick test_int_extremes;
        Alcotest.test_case "non-finite floats render as null" `Quick
          test_non_finite_renders_null;
      ] );
  ]
