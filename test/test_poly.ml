(* Tests for lib/poly: affine expressions, basic sets (Fourier-Motzkin),
   unions, affine maps, relations, lexicographic order. *)

open Poly

let case name f = Alcotest.test_case name `Quick f

(* ---------- Aff ---------- *)

let test_aff_eval () =
  let e = Aff.make [| 2; -1; 0 |] 5 in
  Alcotest.(check int) "eval" (2 * 3 - 4 + 5) (Aff.eval e [| 3; 4; 9 |])

let test_aff_algebra () =
  let x = Aff.var 2 0 and y = Aff.var 2 1 in
  let e = Aff.add (Aff.scale 3 x) (Aff.sub y (Aff.const 2 7)) in
  Alcotest.(check int) "3x + y - 7" ((3 * 5) + 2 - 7) (Aff.eval e [| 5; 2 |])

let test_aff_substitute () =
  (* substitute x0 := x1 + 2 in 3*x0 + x1 -> 4*x1 + 6 *)
  let e = Aff.add (Aff.scale 3 (Aff.var 2 0)) (Aff.var 2 1) in
  let repl = Aff.add_const (Aff.var 2 1) 2 in
  let s = Aff.substitute e 0 repl in
  Alcotest.(check int) "subst" ((4 * 10) + 6) (Aff.eval s [| 999; 10 |])

let test_aff_shift_extend () =
  let e = Aff.make [| 1; 2 |] 3 in
  let sh = Aff.shift e 2 5 in
  Alcotest.(check int) "shift" (7 + (2 * 9) + 3) (Aff.eval sh [| 0; 0; 7; 9; 0 |]);
  let ex = Aff.extend e 2 in
  Alcotest.(check int) "extend" (1 + 4 + 3) (Aff.eval ex [| 1; 2; 5; 6 |])

let test_aff_gcd_reduce () =
  let e = Aff.make [| 4; 6 |] 7 in
  let r, g = Aff.gcd_reduce e in
  Alcotest.(check int) "gcd" 2 g;
  (* 4x + 6y + 7 >= 0  <=>  2x + 3y + floor(7/2) >= 0 *)
  Alcotest.(check int) "coeff" 2 (Aff.coeff r 0);
  Alcotest.(check int) "tightened const" 3 (Aff.constant r);
  let e2 = Aff.make [| 4; 6 |] (-7) in
  let r2, _ = Aff.gcd_reduce e2 in
  Alcotest.(check int) "negative const floor" (-4) (Aff.constant r2)

let test_aff_arity_mismatch () =
  match Aff.add (Aff.var 2 0) (Aff.var 3 0) with
  | _ -> Alcotest.fail "expected Arity_mismatch"
  | exception Aff.Arity_mismatch _ -> ()

(* ---------- Basic_set ---------- *)

let box name dims = Basic_set.of_box (Space.make name (List.map (Printf.sprintf "i%d") (List.init (List.length dims) Fun.id))) dims

let test_box_membership () =
  let b = box "S" [ (0, 10); (0, 10) ] in
  Alcotest.(check bool) "inside" true (Basic_set.mem b [| 0; 10 |]);
  Alcotest.(check bool) "outside" false (Basic_set.mem b [| 0; 11 |]);
  Alcotest.(check bool) "negative" false (Basic_set.mem b [| -1; 0 |])

let test_box_enumerate_count () =
  let b = box "S" [ (0, 2); (1, 3) ] in
  Alcotest.(check int) "count" 9 (List.length (Basic_set.enumerate b))

let test_empty_detection () =
  let b = box "S" [ (0, 5) ] in
  let sp = Basic_set.space b in
  let contradiction =
    Basic_set.add_constraint b (Basic_set.Ge (Aff.sub (Aff.const 1 (-1)) (Aff.var 1 0)))
  in
  ignore sp;
  Alcotest.(check bool) "nonempty box" false (Basic_set.is_empty b);
  Alcotest.(check bool) "x <= -1 and x >= 0 empty" true (Basic_set.is_empty contradiction)

let test_diagonal_constraint () =
  (* { [i,j] : 0<=i,j<=3 and i = j } has 4 points *)
  let b = box "S" [ (0, 3); (0, 3) ] in
  let diag =
    Basic_set.add_constraint b (Basic_set.Eq (Aff.sub (Aff.var 2 0) (Aff.var 2 1)))
  in
  Alcotest.(check int) "diag points" 4 (List.length (Basic_set.enumerate diag))

let test_parity_equality_empty () =
  (* { [i] : 2 i = 5 } is integer-empty; gcd normalization catches it. *)
  let sp = Space.make "S" [ "i" ] in
  let b =
    Basic_set.of_constraints sp
      [ Basic_set.Eq (Aff.make [| 2 |] (-5)) ]
  in
  Alcotest.(check bool) "2i=5 empty" true (Basic_set.is_empty b)

let test_eliminate () =
  (* { [i,j] : 0<=i<=2, i<=j<=i+1 }, eliminating j leaves 0<=i<=2 *)
  let sp = Space.make "S" [ "i"; "j" ] in
  let b =
    Basic_set.of_constraints sp
      [
        Basic_set.Ge (Aff.var 2 0);
        Basic_set.Ge (Aff.sub (Aff.const 2 2) (Aff.var 2 0));
        Basic_set.Ge (Aff.sub (Aff.var 2 1) (Aff.var 2 0));
        Basic_set.Ge (Aff.sub (Aff.add_const (Aff.var 2 0) 1) (Aff.var 2 1));
      ]
  in
  let proj = Basic_set.project_out b [ 1 ] (Space.make "S" [ "i" ]) in
  let pts = Basic_set.enumerate proj in
  Alcotest.(check int) "projected points" 3 (List.length pts)

let test_var_bounds () =
  let b = box "S" [ (2, 7); (0, 1) ] in
  let lo, hi = Basic_set.var_bounds b 0 in
  Alcotest.(check (option int)) "lo" (Some 2) lo;
  Alcotest.(check (option int)) "hi" (Some 7) hi

let test_var_bounds_derived () =
  (* { [i,j] : 0 <= i <= 4 and j = 2i } -> j in [0, 8] *)
  let sp = Space.make "S" [ "i"; "j" ] in
  let b =
    Basic_set.of_constraints sp
      [
        Basic_set.Ge (Aff.var 2 0);
        Basic_set.Ge (Aff.sub (Aff.const 2 4) (Aff.var 2 0));
        Basic_set.Eq (Aff.sub (Aff.var 2 1) (Aff.scale 2 (Aff.var 2 0)));
      ]
  in
  let lo, hi = Basic_set.var_bounds b 1 in
  Alcotest.(check (option int)) "lo" (Some 0) lo;
  Alcotest.(check (option int)) "hi" (Some 8) hi

let test_unbounded () =
  let sp = Space.make "S" [ "i" ] in
  let b = Basic_set.of_constraints sp [ Basic_set.Ge (Aff.var 1 0) ] in
  Alcotest.(check bool) "bounding box" true (Basic_set.bounding_box b = None);
  match Basic_set.enumerate b with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_intersect () =
  let a = box "S" [ (0, 5) ] and b = box "S" [ (3, 9) ] in
  let i = Basic_set.intersect a b in
  Alcotest.(check int) "intersection" 3 (List.length (Basic_set.enumerate i))

(* FM vs enumeration on randomized sets: soundness of the rational
   relaxation (FM-empty implies truly empty) and exactness via
   is_empty_exact. *)
let random_bset_gen =
  QCheck.Gen.(
    let* nvars = int_range 1 3 in
    let* nconstrs = int_range 1 5 in
    let* raw =
      list_repeat nconstrs
        (pair (list_repeat nvars (int_range (-3) 3)) (int_range (-6) 6))
    in
    let* kinds = list_repeat nconstrs bool in
    return (nvars, raw, kinds))

let qcheck_fm_sound =
  QCheck.Test.make ~name:"FM emptiness is sound (never claims empty wrongly)"
    ~count:300 (QCheck.make random_bset_gen) (fun (nvars, raw, kinds) ->
      let sp = Space.make "R" (List.init nvars (Printf.sprintf "x%d")) in
      (* Intersect with a box so the set is bounded and enumerable. *)
      let bounded = Basic_set.of_box sp (List.init nvars (fun _ -> (-4, 4))) in
      let constrs =
        List.map2
          (fun (coeffs, c) is_eq ->
            let e = Aff.make (Array.of_list coeffs) c in
            if is_eq then Basic_set.Eq e else Basic_set.Ge e)
          raw kinds
      in
      let b = List.fold_left Basic_set.add_constraint bounded constrs in
      let truly_empty = Basic_set.enumerate b = [] in
      let fm_empty = Basic_set.is_empty b in
      (* FM may say "nonempty" for an integer-empty set, never the reverse. *)
      (if fm_empty then truly_empty else true)
      && Basic_set.is_empty_exact b = truly_empty)

let qcheck_projection_superset =
  QCheck.Test.make ~name:"FM projection contains the exact projection"
    ~count:200 (QCheck.make random_bset_gen) (fun (nvars, raw, kinds) ->
      QCheck.assume (nvars >= 2);
      let sp = Space.make "R" (List.init nvars (Printf.sprintf "x%d")) in
      let bounded = Basic_set.of_box sp (List.init nvars (fun _ -> (-3, 3))) in
      let constrs =
        List.map2
          (fun (coeffs, c) is_eq ->
            let e = Aff.make (Array.of_list coeffs) c in
            if is_eq then Basic_set.Eq e else Basic_set.Ge e)
          raw kinds
      in
      let b = List.fold_left Basic_set.add_constraint bounded constrs in
      let small = Space.make "R" (List.init (nvars - 1) (Printf.sprintf "x%d")) in
      let proj = Basic_set.project_out b [ nvars - 1 ] small in
      List.for_all
        (fun pt -> Basic_set.mem proj (Array.sub pt 0 (nvars - 1)))
        (Basic_set.enumerate b))

let test_lexmin_lexmax_box () =
  let b = box "S" [ (2, 7); (1, 4) ] in
  Alcotest.(check (option (array int))) "lexmin" (Some [| 2; 1 |]) (Basic_set.lexmin b);
  Alcotest.(check (option (array int))) "lexmax" (Some [| 7; 4 |]) (Basic_set.lexmax b)

let test_lexmin_constrained () =
  (* { [i,j] : 0<=i,j<=4 and i+j >= 6 } : lexmin [2;4], lexmax [4;4] *)
  let b = box "S" [ (0, 4); (0, 4) ] in
  let c =
    Basic_set.add_constraint b
      (Basic_set.Ge (Aff.add_const (Aff.add (Aff.var 2 0) (Aff.var 2 1)) (-6)))
  in
  Alcotest.(check (option (array int))) "lexmin" (Some [| 2; 4 |]) (Basic_set.lexmin c);
  Alcotest.(check (option (array int))) "lexmax" (Some [| 4; 4 |]) (Basic_set.lexmax c)

let test_lexmin_empty () =
  let b = box "S" [ (0, 3) ] in
  let empty =
    Basic_set.add_constraint b (Basic_set.Ge (Aff.make [| -1 |] (-1)))
  in
  Alcotest.(check (option (array int))) "empty" None (Basic_set.lexmin empty)

let qcheck_lex_extrema_match_enumeration =
  QCheck.Test.make ~name:"symbolic lexmin/lexmax match enumeration" ~count:200
    (QCheck.make random_bset_gen) (fun (nvars, raw, kinds) ->
      let sp = Space.make "R" (List.init nvars (Printf.sprintf "x%d")) in
      let bounded = Basic_set.of_box sp (List.init nvars (fun _ -> (-3, 3))) in
      let constrs =
        List.map2
          (fun (coeffs, c) is_eq ->
            let e = Aff.make (Array.of_list coeffs) c in
            if is_eq then Basic_set.Eq e else Basic_set.Ge e)
          raw kinds
      in
      let b = List.fold_left Basic_set.add_constraint bounded constrs in
      let pts =
        List.sort
          (fun a b -> compare (Array.to_list a) (Array.to_list b))
          (Basic_set.enumerate b)
      in
      match pts with
      | [] -> Basic_set.lexmin b = None && Basic_set.lexmax b = None
      | first :: _ ->
          let last = List.nth pts (List.length pts - 1) in
          Basic_set.lexmin b = Some first && Basic_set.lexmax b = Some last)

(* ---------- Set ---------- *)

let test_set_union_mem () =
  let a = box "S" [ (0, 2) ] and b = box "S" [ (5, 6) ] in
  let u = Set.union (Set.of_basic a) (Set.of_basic b) in
  Alcotest.(check bool) "in first" true (Set.mem u [| 1 |]);
  Alcotest.(check bool) "in second" true (Set.mem u [| 6 |]);
  Alcotest.(check bool) "in gap" false (Set.mem u [| 4 |]);
  Alcotest.(check int) "points" 5 (List.length (Set.enumerate u))

let test_set_disjoint () =
  let a = Set.of_basic (box "S" [ (0, 2) ]) in
  let b = Set.of_basic (box "S" [ (3, 5) ]) in
  let c = Set.of_basic (box "S" [ (2, 3) ]) in
  Alcotest.(check bool) "disjoint" true (Set.disjoint a b);
  Alcotest.(check bool) "overlap" false (Set.disjoint a c)

let test_set_subset_equal () =
  let a = Set.of_basic (box "S" [ (1, 2) ]) in
  let b = Set.of_basic (box "S" [ (0, 5) ]) in
  Alcotest.(check bool) "subset" true (Set.subset a b);
  Alcotest.(check bool) "not subset" false (Set.subset b a);
  Alcotest.(check bool) "equal self" true (Set.equal_points b b)

(* ---------- Aff_map ---------- *)

let sp2 = Space.make "T" [ "i"; "j" ]
let sp1 = Space.make "A" [ "a" ]

let row_major_2d n =
  Aff_map.make sp2 sp1 [| Aff.add (Aff.scale n (Aff.var 2 0)) (Aff.var 2 1) |]

let test_aff_map_apply () =
  let l = row_major_2d 11 in
  Alcotest.(check (array int)) "layout" [| (11 * 3) + 4 |] (Aff_map.apply l [| 3; 4 |])

let test_aff_map_identity_compose () =
  let l = row_major_2d 11 in
  let c = Aff_map.compose l (Aff_map.identity sp2) in
  Alcotest.(check bool) "compose with id" true (Aff_map.equal c l)

let test_aff_map_compose () =
  (* f : [i,j] -> [j,i]; l = row major; l ∘ f = [i,j] -> [11 j + i] *)
  let f = Aff_map.make sp2 sp2 [| Aff.var 2 1; Aff.var 2 0 |] in
  let c = Aff_map.compose (row_major_2d 11) f in
  Alcotest.(check (array int)) "composed" [| (11 * 4) + 3 |] (Aff_map.apply c [| 3; 4 |])

let test_aff_map_image () =
  (* image of the 3x3 box under row-major is exactly offsets with
     i in 0..2, j in 0..2 *)
  let b = Basic_set.of_box sp2 [ (0, 2); (0, 2) ] in
  let l = row_major_2d 3 in
  let img = Aff_map.image l b in
  let pts = List.sort compare (Basic_set.enumerate img) in
  Alcotest.(check int) "exact image count" 9 (List.length pts);
  Alcotest.(check (array int)) "first" [| 0 |] (List.hd pts)

let test_aff_map_image_points () =
  let b = Basic_set.of_box sp2 [ (0, 2); (0, 2) ] in
  let l = row_major_2d 11 in
  let pts = Aff_map.image_points l b in
  Alcotest.(check int) "9 distinct offsets" 9 (List.length pts)

let test_aff_map_injective () =
  let b = Basic_set.of_box sp2 [ (0, 10); (0, 10) ] in
  Alcotest.(check bool) "row major injective" true
    (Aff_map.is_injective_on (row_major_2d 11) b);
  (* stride 10 is too small for extent 11: collisions *)
  Alcotest.(check bool) "bad stride not injective" false
    (Aff_map.is_injective_on (row_major_2d 10) b)

let test_aff_map_concat_select () =
  let f = Aff_map.identity sp2 in
  let g = row_major_2d 11 in
  let both = Aff_map.concat_outputs f g in
  Alcotest.(check (array int)) "paired" [| 3; 4; 37 |] (Aff_map.apply both [| 3; 4 |]);
  let third = Aff_map.select_outputs both [ 2 ] sp1 in
  Alcotest.(check (array int)) "selected" [| 37 |] (Aff_map.apply third [| 3; 4 |])

let qcheck_image_matches_enumeration =
  QCheck.Test.make ~name:"FM image superset & membership of true image" ~count:100
    QCheck.(pair (int_range 1 4) (int_range 0 3))
    (fun (stride, shift) ->
      let l =
        Aff_map.make sp2 sp1
          [| Aff.add_const (Aff.add (Aff.scale stride (Aff.var 2 0)) (Aff.var 2 1)) shift |]
      in
      let b = Basic_set.of_box sp2 [ (0, 3); (0, 2) ] in
      let img = Aff_map.image l b in
      List.for_all (fun p -> Basic_set.mem img p) (Aff_map.image_points l b))

(* ---------- Rel ---------- *)

let test_rel_of_aff_map () =
  let l = row_major_2d 3 in
  let dom = Basic_set.of_box sp2 [ (0, 2); (0, 2) ] in
  let r = Rel.of_aff_map_on l dom in
  Alcotest.(check bool) "mem" true (Rel.mem r [| 1; 2 |] [| 5 |]);
  Alcotest.(check bool) "not mem" false (Rel.mem r [| 1; 2 |] [| 6 |]);
  Alcotest.(check int) "pairs" 9 (List.length (Rel.enumerate r))

let test_rel_inverse () =
  let l = row_major_2d 3 in
  let dom = Basic_set.of_box sp2 [ (0, 2); (0, 2) ] in
  let r = Rel.inverse (Rel.of_aff_map_on l dom) in
  Alcotest.(check bool) "inverse mem" true (Rel.mem r [| 5 |] [| 1; 2 |])

let test_rel_compose () =
  (* r1: i -> i+1 on 0..3; r2: i -> 2i; compose: i -> 2(i+1) *)
  let s = Space.make "N" [ "i" ] in
  let d = Basic_set.of_box s [ (0, 3) ] in
  let r1 = Rel.of_aff_map_on (Aff_map.make s s [| Aff.add_const (Aff.var 1 0) 1 |]) d in
  let r2 = Rel.of_aff_map (Aff_map.make s s [| Aff.scale 2 (Aff.var 1 0) |]) in
  let c = Rel.compose r2 r1 in
  Alcotest.(check bool) "composed mem" true (Rel.mem c [| 3 |] [| 8 |]);
  Alcotest.(check bool) "composed not mem" false (Rel.mem c [| 3 |] [| 6 |])

let test_rel_domain_range () =
  let s = Space.make "N" [ "i" ] in
  let d = Basic_set.of_box s [ (2, 4) ] in
  let r = Rel.of_aff_map_on (Aff_map.make s s [| Aff.add_const (Aff.var 1 0) 10 |]) d in
  Alcotest.(check int) "domain size" 3 (List.length (Set.enumerate (Rel.domain r)));
  let range_pts = List.sort compare (Set.enumerate (Rel.range r)) in
  Alcotest.(check (array int)) "range lo" [| 12 |] (List.hd range_pts)

let test_rel_apply_point () =
  let s = Space.make "N" [ "i" ] in
  let d = Basic_set.of_box s [ (0, 5) ] in
  let r = Rel.of_aff_map_on (Aff_map.make s s [| Aff.scale 3 (Aff.var 1 0) |]) d in
  (match Rel.apply_point r [| 2 |] with
  | [ y ] -> Alcotest.(check (array int)) "apply" [| 6 |] y
  | other -> Alcotest.failf "expected one image, got %d" (List.length other));
  Alcotest.(check (list (array int))) "outside domain" []
    (Rel.apply_point r [| 9 |])

let test_rel_of_pairs () =
  let s = Space.make "N" [ "i" ] in
  let r = Rel.of_pairs s s [ ([| 1 |], [| 4 |]); ([| 2 |], [| 5 |]) ] in
  Alcotest.(check bool) "pair mem" true (Rel.mem r [| 2 |] [| 5 |]);
  Alcotest.(check bool) "cross pair" false (Rel.mem r [| 1 |] [| 5 |]);
  Alcotest.(check int) "count" 2 (List.length (Rel.enumerate r))

let test_rel_intersect_domain () =
  let s = Space.make "N" [ "i" ] in
  let d = Basic_set.of_box s [ (0, 9) ] in
  let r = Rel.of_aff_map_on (Aff_map.identity s) d in
  let restricted = Rel.intersect_domain r (Basic_set.of_box s [ (3, 4) ]) in
  Alcotest.(check int) "restricted" 2 (List.length (Rel.enumerate restricted))

(* Random affine relations on a small box for algebraic laws. *)
let random_rel_gen =
  QCheck.Gen.(
    let* c0 = int_range (-2) 2 in
    let* c1 = int_range (-2) 2 in
    let* k = int_range (-2) 2 in
    return (c0, c1, k))

let mk_rel (c0, c1, k) =
  let s = Space.make "N" [ "i" ] in
  let d = Basic_set.of_box s [ (-3, 3) ] in
  (* i -> c0*i + k restricted to outputs within [-9, 9] to keep bounded *)
  ignore c1;
  Rel.intersect_range
    (Rel.of_aff_map_on
       (Aff_map.make s s [| Aff.add_const (Aff.scale c0 (Aff.var 1 0)) k |])
       d)
    (Basic_set.of_box s [ (-9, 9) ])

let rel_pairs r =
  List.sort compare
    (List.map (fun (a, b) -> (Array.to_list a, Array.to_list b)) (Rel.enumerate r))

let qcheck_rel_inverse_involution =
  QCheck.Test.make ~name:"relation inverse is an involution" ~count:100
    (QCheck.make random_rel_gen) (fun params ->
      let r = mk_rel params in
      rel_pairs (Rel.inverse (Rel.inverse r)) = rel_pairs r)

let qcheck_rel_compose_assoc =
  QCheck.Test.make ~name:"relation composition is associative" ~count:60
    (QCheck.make QCheck.Gen.(pair random_rel_gen (pair random_rel_gen random_rel_gen)))
    (fun (p1, (p2, p3)) ->
      let r1 = mk_rel p1 and r2 = mk_rel p2 and r3 = mk_rel p3 in
      rel_pairs (Rel.compose (Rel.compose r3 r2) r1)
      = rel_pairs (Rel.compose r3 (Rel.compose r2 r1)))

let qcheck_rel_compose_matches_pointwise =
  QCheck.Test.make ~name:"composition agrees with pointwise application" ~count:60
    (QCheck.make QCheck.Gen.(pair random_rel_gen random_rel_gen))
    (fun (p1, p2) ->
      let r1 = mk_rel p1 and r2 = mk_rel p2 in
      let c = Rel.compose r2 r1 in
      List.for_all
        (fun (x, z) ->
          List.exists (fun y -> Rel.mem r1 x y && Rel.mem r2 y z)
            (List.init 19 (fun i -> [| i - 9 |])))
        (Rel.enumerate c))

(* ---------- Lex ---------- *)

let test_lex_compare () =
  Alcotest.(check int) "equal" 0 (Lex.compare [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "lt" true (Lex.lt [| 1; 2 |] [| 1; 3 |]);
  Alcotest.(check bool) "prefix pads zero" true (Lex.lt [| 1 |] [| 1; 1 |]);
  Alcotest.(check bool) "pad equal" true (Lex.equal [| 1 |] [| 1; 0 |])

let test_lex_interval () =
  let i1 = Lex.interval [| 0; 0 |] [| 1; 5 |] in
  let i2 = Lex.interval [| 1; 6 |] [| 2; 0 |] in
  let i3 = Lex.interval [| 1; 5 |] [| 3; 0 |] in
  Alcotest.(check bool) "disjoint" false (Lex.overlap i1 i2);
  Alcotest.(check bool) "overlap at endpoint" true (Lex.overlap i1 i3);
  Alcotest.(check bool) "contains" true (Lex.contains i1 [| 0; 99 |]);
  match Lex.interval [| 2 |] [| 1 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_lex_hull () =
  let h = Lex.hull (Lex.singleton [| 1; 1 |]) (Lex.singleton [| 0; 9 |]) in
  Alcotest.(check bool) "hull first" true (Lex.equal h.Lex.first [| 0; 9 |]);
  Alcotest.(check bool) "hull last" true (Lex.equal h.Lex.last [| 1; 1 |])

let qcheck_lex_total_order =
  QCheck.Test.make ~name:"lex compare is a total order" ~count:200
    QCheck.(triple (list (int_range (-3) 3)) (list (int_range (-3) 3)) (list (int_range (-3) 3)))
    (fun (a, b, c) ->
      let a = Array.of_list a and b = Array.of_list b and c = Array.of_list c in
      let sgn x = Stdlib.compare x 0 in
      (* antisymmetry *)
      sgn (Lex.compare a b) = -sgn (Lex.compare b a)
      && (* transitivity of <= *)
      (not (Lex.le a b && Lex.le b c) || Lex.le a c))

let suite =
  [
    ( "poly.aff",
      [
        case "eval" test_aff_eval;
        case "algebra" test_aff_algebra;
        case "substitute" test_aff_substitute;
        case "shift/extend" test_aff_shift_extend;
        case "gcd reduce tightening" test_aff_gcd_reduce;
        case "arity mismatch" test_aff_arity_mismatch;
      ] );
    ( "poly.basic_set",
      [
        case "box membership" test_box_membership;
        case "enumerate count" test_box_enumerate_count;
        case "emptiness" test_empty_detection;
        case "diagonal equality" test_diagonal_constraint;
        case "integer-empty parity equality" test_parity_equality_empty;
        case "eliminate/project" test_eliminate;
        case "var bounds direct" test_var_bounds;
        case "var bounds derived" test_var_bounds_derived;
        case "unbounded handling" test_unbounded;
        case "intersect" test_intersect;
        case "lexmin/lexmax box" test_lexmin_lexmax_box;
        case "lexmin constrained" test_lexmin_constrained;
        case "lexmin empty" test_lexmin_empty;
        Test_seed.to_alcotest qcheck_fm_sound;
        Test_seed.to_alcotest qcheck_projection_superset;
        Test_seed.to_alcotest qcheck_lex_extrema_match_enumeration;
      ] );
    ( "poly.set",
      [
        case "union membership" test_set_union_mem;
        case "disjointness" test_set_disjoint;
        case "subset/equal" test_set_subset_equal;
      ] );
    ( "poly.aff_map",
      [
        case "apply layout" test_aff_map_apply;
        case "identity compose" test_aff_map_identity_compose;
        case "compose permutation" test_aff_map_compose;
        case "image (FM)" test_aff_map_image;
        case "image points" test_aff_map_image_points;
        case "injectivity check" test_aff_map_injective;
        case "concat/select outputs" test_aff_map_concat_select;
        Test_seed.to_alcotest qcheck_image_matches_enumeration;
      ] );
    ( "poly.rel",
      [
        case "graph of affine map" test_rel_of_aff_map;
        case "inverse" test_rel_inverse;
        case "compose" test_rel_compose;
        case "domain/range" test_rel_domain_range;
        case "apply point" test_rel_apply_point;
        case "of_pairs" test_rel_of_pairs;
        case "intersect domain" test_rel_intersect_domain;
        Test_seed.to_alcotest qcheck_rel_inverse_involution;
        Test_seed.to_alcotest qcheck_rel_compose_assoc;
        Test_seed.to_alcotest qcheck_rel_compose_matches_pointwise;
      ] );
    ( "poly.lex",
      [
        case "compare" test_lex_compare;
        case "intervals" test_lex_interval;
        case "hull" test_lex_hull;
        Test_seed.to_alcotest qcheck_lex_total_order;
      ] );
  ]
