(* One seed for every randomized test in the suite.

   Default is fixed (so a failure on one machine reproduces on another),
   overridable with QCHECK_SEED=<int>. The effective seed is printed once
   at startup so a failing CI log always shows how to replay it. Each test
   gets its own Random.State seeded identically, making a test's input
   stream independent of suite ordering. *)

let default_seed = 0xCFD

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | None | Some "" -> default_seed
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          Printf.eprintf "test: ignoring non-integer QCHECK_SEED=%S\n%!" s;
          default_seed)

let () =
  Printf.printf
    "randomized tests seeded with %d (override with QCHECK_SEED=<int>)\n%!"
    seed

let rand () = Random.State.make [| seed |]

let to_alcotest ?(speed_level = `Quick) test =
  QCheck_alcotest.to_alcotest ~speed_level ~rand:(rand ()) test
