(* Differential and stress tests for the parallel functional simulator.

   The element-sharded strategy of {!Sim.Functional} must be observably
   indistinguishable from the Kelly-schedule-faithful round-scheduled
   strategy — bit-identical per-element results and identical [sim.*]
   schedule counters — at every job count, including padded tails and
   job counts exceeding the element count (qcheck over a matrix of
   compiled systems).

   Error paths must be deterministic under parallelism: a missing
   input, a wrong word count or an engine trap surfaces as
   {!Sim.Functional.Error} naming the {e element} (never the
   jobs-dependent shard), with the same message at every job count and
   the worker's backtrace preserved; a failed run never poisons a
   subsequent one.

   Plus unit tests for the strategy-aware jobs default, the CLI
   strategy spellings, the recorder guard (sharded + [Memprof.Record]
   must be refused — Kelly timestamps only exist in round order), and
   the [sim.shard] span / [sim.shards] counter telemetry.

   All randomized tests draw from the fixed suite seed ({!Test_seed}). *)

let case name f = Alcotest.test_case name `Quick f

let sort_bindings l = List.sort (fun (a, _) (b, _) -> compare a b) l

let buffers_identical got expected =
  let got = sort_bindings got and expected = sort_bindings expected in
  List.length got = List.length expected
  && List.for_all2
       (fun (n1, (b1 : float array)) (n2, b2) ->
         n1 = n2
         && Array.length b1 = Array.length b2
         && Array.for_all2
              (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
              b1 b2)
       got expected

let results_identical ~what a b =
  Alcotest.(check int) (what ^ ": element count") (Array.length a)
    (Array.length b);
  Array.iteri
    (fun e bindings ->
      if not (buffers_identical bindings b.(e)) then
        Alcotest.failf "%s: element %d differs" what e)
    a

let contains ~sub s =
  let n = String.length sub and l = String.length s in
  let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Systems under test: a (p, k, m) matrix of compiled pipelines        *)
(* ------------------------------------------------------------------ *)

type sut = {
  label : string;
  result : Cfd_core.Compile.result;
  system : Sysgen.System.t;
}

let suts =
  List.concat_map
    (fun p ->
      let r = Cfd_core.Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p ()) in
      List.filter_map
        (fun (k, m) ->
          match Cfd_core.Compile.build_system ~force_k:k ~force_m:m
                  ~n_elements:32 r
          with
          | sys ->
              Some
                {
                  label = Printf.sprintf "p=%d k=%d m=%d" p k m;
                  result = r;
                  system = sys;
                }
          | exception Sysgen.Replicate.Infeasible _ -> None)
        [ (1, 1); (1, 2); (2, 2); (2, 4) ])
    [ 2; 3 ]

let () = assert (suts <> [])

(* A k=2 system with several PLM sets per accelerator, for the error
   and telemetry tests. *)
let error_sut =
  match List.find_opt (fun s -> contains ~sub:"k=2 m=4" s.label) suts with
  | Some s -> s
  | None -> List.hd suts

(* Pure per-element inputs: every call derives its stream from
   (seed, element) alone, so worker domains can call it concurrently
   and every strategy sees identical data. *)
let pure_inputs (sys : Sysgen.System.t) ~seed =
  let shapes =
    List.map
      (fun (tr : Sysgen.System.transfer) ->
        (tr.Sysgen.System.array, tr.Sysgen.System.bytes / 8))
      sys.Sysgen.System.host.Sysgen.System.per_element_in
  in
  fun e ->
    let st = Random.State.make [| Test_seed.seed; seed; e |] in
    List.map
      (fun (name, size) ->
        (name, Array.init size (fun _ -> Random.State.float st 2.0 -. 1.0)))
      shapes

let run ?jobs ?strategy ?inputs ?(seed = 7) ~n sut =
  let inputs =
    match inputs with Some i -> i | None -> pure_inputs sut.system ~seed
  in
  Sim.Functional.run ?jobs ?strategy ~system:sut.system
    ~proc:sut.result.Cfd_core.Compile.proc ~inputs ~n ()

let error_message f =
  match f () with
  | _ -> Alcotest.fail "expected Sim.Functional.Error"
  | exception Sim.Functional.Error m -> m

(* ------------------------------------------------------------------ *)
(* Differential: strategies and job counts are bit-identical           *)
(* ------------------------------------------------------------------ *)

(* The schedule counters (not sim.shards, which deliberately depends on
   the job count) must advance identically for every strategy. *)
let schedule_counters =
  List.map Obs.Metrics.counter
    [
      "sim.elements";
      "sim.kernel-runs";
      "sim.rounds";
      "sim.padded-skips";
      "sim.dma.bytes_in";
      "sim.dma.bytes_out";
    ]

let with_counter_deltas f =
  let before = List.map Obs.Metrics.counter_value schedule_counters in
  let r = f () in
  let after = List.map Obs.Metrics.counter_value schedule_counters in
  (r, List.map2 ( - ) after before)

let qcheck_strategies_agree =
  QCheck.Test.make ~count:25
    ~name:"sharded = round-scheduled, bit for bit, any jobs"
    QCheck.(
      quad
        (int_range 0 (List.length suts - 1))
        (int_range 1 32) (int_range 2 5) (int_range 0 1000))
    (fun (si, n, jobs, seed) ->
      let sut = List.nth suts si in
      let inputs = pure_inputs sut.system ~seed in
      let leg ~strategy ~jobs =
        with_counter_deltas (fun () -> run sut ~strategy ~jobs ~inputs ~n)
      in
      let ref_r, ref_d =
        leg ~strategy:Sim.Functional.Round_scheduled ~jobs:1
      in
      List.iter
        (fun (strategy, jobs) ->
          let r, d = leg ~strategy ~jobs in
          if d <> ref_d then
            QCheck.Test.fail_reportf
              "%s n=%d: sim.* counters differ under %s jobs:%d" sut.label n
              (Sim.Functional.strategy_name strategy)
              jobs;
          Array.iteri
            (fun e bindings ->
              if not (buffers_identical bindings r.(e)) then
                QCheck.Test.fail_reportf
                  "%s n=%d: element %d differs under %s jobs:%d" sut.label n e
                  (Sim.Functional.strategy_name strategy)
                  jobs)
            ref_r)
        [
          (Sim.Functional.Sharded, 1);
          (Sim.Functional.Sharded, jobs);
          (Sim.Functional.Round_scheduled, jobs);
        ];
      true)

(* A single deterministic stress point, big enough that every worker
   domain processes several blocks of a padded element range. *)
let test_stress_large_n () =
  let sut = error_sut in
  let inputs = pure_inputs sut.system ~seed:42 in
  let seq = run sut ~strategy:Sim.Functional.Round_scheduled ~jobs:1 ~inputs ~n:150 in
  List.iter
    (fun jobs ->
      results_identical
        ~what:(Printf.sprintf "n=150 sharded jobs:%d" jobs)
        seq
        (run sut ~strategy:Sim.Functional.Sharded ~jobs ~inputs ~n:150))
    [ 1; 4; 7 ]

(* More worker slots than elements: shards clamp to n and the tail
   domains simply get nothing. *)
let test_more_jobs_than_elements () =
  let sut = List.hd suts in
  let inputs = pure_inputs sut.system ~seed:3 in
  results_identical ~what:"jobs:64 over 7 elements"
    (run sut ~strategy:Sim.Functional.Sharded ~jobs:1 ~inputs ~n:7)
    (run sut ~strategy:Sim.Functional.Sharded ~jobs:64 ~inputs ~n:7)

(* ------------------------------------------------------------------ *)
(* Deterministic error surface under parallelism                       *)
(* ------------------------------------------------------------------ *)

(* Every job count must produce the same Error text, naming the lowest
   failing element — shards are jobs-dependent, elements are not. *)
let check_error_invariant ~what ~element ?(extra = []) ~inputs ~n sut =
  let messages =
    List.map
      (fun jobs ->
        error_message (fun () ->
            run sut ~strategy:Sim.Functional.Sharded ~jobs ~inputs ~n))
      [ 1; 2; 4 ]
  in
  let first = List.hd messages in
  List.iter
    (fun m -> Alcotest.(check string) (what ^ ": same message at every jobs") first m)
    messages;
  List.iter
    (fun sub ->
      if not (contains ~sub first) then
        Alcotest.failf "%s: error %S does not mention %S" what first sub)
    (Printf.sprintf "element %d" element :: extra)

let test_missing_input () =
  let sut = error_sut in
  let base = pure_inputs sut.system ~seed:11 in
  let inputs e = if e = 5 then List.tl (base e) else base e in
  check_error_invariant ~what:"missing input" ~element:5
    ~extra:[ "missing input" ] ~inputs ~n:12 sut

let test_wrong_word_count () =
  let sut = error_sut in
  let base = pure_inputs sut.system ~seed:13 in
  let inputs e =
    match base e with
    | (name, a) :: rest when e = 3 ->
        (name, Array.sub a 0 (Array.length a - 1)) :: rest
    | b -> b
  in
  check_error_invariant ~what:"wrong word count" ~element:3
    ~extra:[ "words"; "expected" ] ~inputs ~n:12 sut

(* An out-of-bounds store appended to the kernel: the static verifier
   refuses the unchecked license, so the compiled engine traps at run
   time — inside a worker domain under jobs > 1. *)
let trap_proc (proc : Loopir.Prog.proc) =
  let out =
    List.find (fun p -> p.Loopir.Prog.dir = Loopir.Prog.Out)
      proc.Loopir.Prog.params
  in
  {
    proc with
    Loopir.Prog.body =
      proc.Loopir.Prog.body
      @ [
          Loopir.Prog.Store
            {
              array = out.Loopir.Prog.name;
              index = Loopir.Ix.const out.Loopir.Prog.size;
              value = Loopir.Prog.Const 0.0;
            };
        ];
  }

let run_trap ~jobs sut ~n =
  Sim.Functional.run ~jobs ~strategy:Sim.Functional.Sharded ~system:sut.system
    ~proc:(trap_proc sut.result.Cfd_core.Compile.proc)
    ~inputs:(pure_inputs sut.system ~seed:17)
    ~n ()

let test_engine_trap () =
  let sut = error_sut in
  let messages =
    List.map
      (fun jobs -> error_message (fun () -> run_trap ~jobs sut ~n:12))
      [ 1; 2; 4 ]
  in
  let first = List.hd messages in
  List.iter
    (fun m -> Alcotest.(check string) "trap: same message at every jobs" first m)
    messages;
  if not (contains ~sub:"element 0" first) then
    Alcotest.failf "trap error %S does not name element 0" first

let test_trap_backtrace_preserved () =
  Printexc.record_backtrace true;
  match run_trap ~jobs:4 error_sut ~n:12 with
  | _ -> Alcotest.fail "expected Sim.Functional.Error"
  | exception Sim.Functional.Error _ ->
      Alcotest.(check bool) "worker raise site survives the join" true
        (Printexc.raw_backtrace_length (Printexc.get_raw_backtrace ()) > 0)

(* A failed parallel run must not poison the next one: the same sut and
   engine, rerun with good inputs, still matches the sequential leg. *)
let test_failure_leaves_no_corruption () =
  let sut = error_sut in
  let base = pure_inputs sut.system ~seed:19 in
  let bad e = if e = 5 then [] else base e in
  (match run sut ~strategy:Sim.Functional.Sharded ~jobs:4 ~inputs:bad ~n:12 with
  | _ -> Alcotest.fail "expected Sim.Functional.Error"
  | exception Sim.Functional.Error _ -> ());
  results_identical ~what:"rerun after failure"
    (run sut ~strategy:Sim.Functional.Round_scheduled ~jobs:1 ~inputs:base ~n:12)
    (run sut ~strategy:Sim.Functional.Sharded ~jobs:4 ~inputs:base ~n:12)

(* ------------------------------------------------------------------ *)
(* Jobs default and validation                                         *)
(* ------------------------------------------------------------------ *)

let test_default_jobs_formula () =
  let cores = Parallel.Pool.default_jobs () in
  Alcotest.(check int) "sharded parallelism is capped by n, not k" 1
    (Sim.Functional.default_jobs ~strategy:Sim.Functional.Sharded ~n:1 ~k:8);
  Alcotest.(check int) "sharded ignores the accelerator count"
    (Sim.Functional.default_jobs ~strategy:Sim.Functional.Sharded ~n:100 ~k:64)
    (Sim.Functional.default_jobs ~strategy:Sim.Functional.Sharded ~n:100 ~k:1);
  Alcotest.(check int) "sharded = min n cores"
    (max 1 (min 100 cores))
    (Sim.Functional.default_jobs ~strategy:Sim.Functional.Sharded ~n:100 ~k:1);
  Alcotest.(check int) "round-scheduled is still capped by k"
    (max 1 (min 2 cores))
    (Sim.Functional.default_jobs ~strategy:Sim.Functional.Round_scheduled
       ~n:100 ~k:2)

let test_jobs_rejected_both_strategies () =
  List.iter
    (fun strategy ->
      let m =
        error_message (fun () -> run (List.hd suts) ~strategy ~jobs:0 ~n:8)
      in
      if not (contains ~sub:"jobs" m) then
        Alcotest.failf "jobs:0 error %S does not mention jobs" m)
    [ Sim.Functional.Sharded; Sim.Functional.Round_scheduled ]

let test_strategy_spellings () =
  let check_ok s expect =
    match Sim.Functional.strategy_of_string s with
    | Ok got ->
        Alcotest.(check string) ("spelling " ^ s)
          (Sim.Functional.strategy_name expect)
          (Sim.Functional.strategy_name got)
    | Error m -> Alcotest.failf "spelling %s rejected: %s" s m
  in
  check_ok "shard" Sim.Functional.Sharded;
  check_ok "sharded" Sim.Functional.Sharded;
  check_ok "round" Sim.Functional.Round_scheduled;
  check_ok "round-scheduled" Sim.Functional.Round_scheduled;
  match Sim.Functional.strategy_of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus strategy accepted"
  | Error m ->
      Alcotest.(check bool) "error names the bad spelling" true
        (contains ~sub:"bogus" m)

(* ------------------------------------------------------------------ *)
(* Recorder guard: sharded + Memprof.Record must be refused            *)
(* ------------------------------------------------------------------ *)

let test_memprof_guard () =
  let sut = error_sut in
  Memprof.Record.reset ();
  Memprof.Record.enable ();
  Fun.protect
    ~finally:(fun () ->
      Memprof.Record.disable ();
      Memprof.Record.reset ())
    (fun () ->
      let m =
        error_message (fun () ->
            run sut ~strategy:Sim.Functional.Sharded ~jobs:1 ~n:4)
      in
      Alcotest.(check bool) "diagnostic points at round-scheduled" true
        (contains ~sub:"round-scheduled" m);
      (* The faithful schedule still records: the snapshot sees the DMA
         traffic of the run. *)
      let _ = run sut ~strategy:Sim.Functional.Round_scheduled ~jobs:1 ~n:4 in
      let snap = Memprof.Record.snapshot () in
      Alcotest.(check bool) "round-scheduled run reached the recorder" true
        (snap.Memprof.Record.sn_dma <> []))

(* ------------------------------------------------------------------ *)
(* Telemetry: sim.shard spans and the sim.shards counter               *)
(* ------------------------------------------------------------------ *)

let test_shard_telemetry () =
  let sut = error_sut in
  let c_shards = Obs.Metrics.counter "sim.shards" in
  let before = Obs.Metrics.counter_value c_shards in
  Obs.Trace.reset ();
  Obs.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.reset ())
    (fun () ->
      let _ = run sut ~strategy:Sim.Functional.Sharded ~jobs:4 ~n:10 in
      let events = Obs.Trace.events () in
      let shard_spans =
        List.filter (fun e -> e.Obs.Trace.ev_name = "sim.shard") events
      in
      Alcotest.(check int) "one sim.shard span per worker" 4
        (List.length shard_spans);
      Alcotest.(check int) "sim.shards counts the run's shards" 4
        (Obs.Metrics.counter_value c_shards - before);
      let root =
        List.find (fun e -> e.Obs.Trace.ev_name = "sim.functional") events
      in
      Alcotest.(check (option string)) "root span carries the strategy"
        (Some "sharded")
        (List.assoc_opt "strategy" root.Obs.Trace.ev_attrs))

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "sim.par.differential",
      [
        Test_seed.to_alcotest qcheck_strategies_agree;
        case "n=150 stress across jobs" test_stress_large_n;
        case "more jobs than elements" test_more_jobs_than_elements;
      ] );
    ( "sim.par.errors",
      [
        case "missing input names the element at every jobs"
          test_missing_input;
        case "wrong word count names the element at every jobs"
          test_wrong_word_count;
        case "engine trap names the element at every jobs" test_engine_trap;
        case "worker backtrace preserved" test_trap_backtrace_preserved;
        case "failed run does not poison the next"
          test_failure_leaves_no_corruption;
      ] );
    ( "sim.par.jobs",
      [
        case "default jobs formula per strategy" test_default_jobs_formula;
        case "jobs:0 rejected by both strategies"
          test_jobs_rejected_both_strategies;
        case "strategy spellings" test_strategy_spellings;
      ] );
    ( "sim.par.memprof",
      [ case "recorder refuses sharded, records round" test_memprof_guard ] );
    ( "sim.par.obs",
      [ case "shard spans and counter" test_shard_telemetry ] );
  ]
