(* Tests for lib/tensor: shapes, dense values, reference ops, and the
   Inverse Helmholtz reference operator. *)

open Tensor

let check_close ?(tol = 1e-9) msg a b =
  let ok = Dense.equal ~tol a b in
  if not ok then
    Alcotest.failf "%s: tensors differ (max abs diff %g)" msg
      (Dense.max_abs_diff a b);
  Alcotest.(check bool) msg true ok

(* ---------- Shape ---------- *)

let test_shape_basics () =
  let s = Shape.create [ 2; 3; 4 ] in
  Alcotest.(check int) "rank" 3 (Shape.rank s);
  Alcotest.(check int) "elements" 24 (Shape.num_elements s);
  Alcotest.(check (list int)) "strides" [ 12; 4; 1 ] (Shape.strides s);
  Alcotest.(check (list int)) "dims" [ 2; 3; 4 ] (Shape.dims s);
  Alcotest.(check string) "pp" "[2 3 4]" (Shape.to_string s)

let test_shape_scalar () =
  Alcotest.(check int) "rank" 0 (Shape.rank Shape.scalar);
  Alcotest.(check int) "elements" 1 (Shape.num_elements Shape.scalar);
  Alcotest.(check int) "linearize []" 0 (Shape.linearize Shape.scalar [])

let test_shape_invalid () =
  Alcotest.check_raises "zero extent"
    (Shape.Invalid "shape: dimension 1 has extent 0") (fun () ->
      ignore (Shape.create [ 2; 0 ]))

let test_shape_linearize_roundtrip () =
  let s = Shape.create [ 3; 5; 2 ] in
  Shape.iter s (fun idx ->
      let off = Shape.linearize s idx in
      Alcotest.(check (list int))
        (Printf.sprintf "roundtrip %d" off)
        idx
        (Shape.delinearize s off))

let test_shape_linearize_oob () =
  let s = Shape.create [ 3; 3 ] in
  (match Shape.linearize s [ 1; 3 ] with
  | _ -> Alcotest.fail "expected Invalid"
  | exception Shape.Invalid _ -> ());
  match Shape.linearize s [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid"
  | exception Shape.Invalid _ -> ()

let test_shape_iter_order () =
  let s = Shape.create [ 2; 2 ] in
  let order = ref [] in
  Shape.iter s (fun idx -> order := idx :: !order);
  Alcotest.(check (list (list int)))
    "row-major order"
    [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
    (List.rev !order)

let test_shape_concat_remove () =
  let a = Shape.create [ 2; 3 ] and b = Shape.create [ 4 ] in
  Alcotest.(check (list int)) "concat" [ 2; 3; 4 ] (Shape.dims (Shape.concat a b));
  Alcotest.(check (list int))
    "remove" [ 3 ]
    (Shape.dims (Shape.remove_dims (Shape.concat a b) [ 0; 2 ]))

let test_shape_cube () =
  Alcotest.(check (list int)) "cube" [ 11; 11; 11 ] (Shape.dims (Shape.cube 3 11))

(* ---------- Dense ---------- *)

let test_dense_init_get () =
  let s = Shape.create [ 2; 3 ] in
  let t = Dense.init s (fun [@warning "-8"] [ i; j ] -> float_of_int ((10 * i) + j)) in
  Alcotest.(check (float 0.)) "get [1;2]" 12.0 (Dense.get t [ 1; 2 ]);
  Alcotest.(check (float 0.)) "flat 5" 12.0 (Dense.get_flat t 5)

let test_dense_set () =
  let t = Dense.create (Shape.create [ 2; 2 ]) in
  Dense.set t [ 1; 0 ] 3.5;
  Alcotest.(check (float 0.)) "set/get" 3.5 (Dense.get t [ 1; 0 ]);
  Alcotest.(check (float 0.)) "other untouched" 0.0 (Dense.get t [ 0; 1 ])

let test_dense_random_deterministic () =
  let s = Shape.create [ 4; 4 ] in
  let a = Dense.random ~seed:3 s and b = Dense.random ~seed:3 s in
  check_close "same seed" a b;
  let c = Dense.random ~seed:4 s in
  Alcotest.(check bool) "different seed differs" false (Dense.equal a c)

let test_dense_identity () =
  let i3 = Dense.identity 3 in
  Alcotest.(check (float 0.)) "diag" 1.0 (Dense.get i3 [ 2; 2 ]);
  Alcotest.(check (float 0.)) "off-diag" 0.0 (Dense.get i3 [ 0; 2 ])

let test_dense_of_array_mismatch () =
  match Dense.of_array (Shape.create [ 2; 2 ]) [| 1.; 2.; 3. |] with
  | _ -> Alcotest.fail "expected Invalid"
  | exception Shape.Invalid _ -> ()

let test_dense_copy_isolated () =
  let a = Dense.create (Shape.create [ 2 ]) in
  let b = Dense.copy a in
  Dense.set b [ 0 ] 9.0;
  Alcotest.(check (float 0.)) "copy isolated" 0.0 (Dense.get a [ 0 ])

let test_dense_equal_tolerance () =
  let s = Shape.create [ 2 ] in
  let a = Dense.of_array s [| 1.0; 2.0 |] in
  let b = Dense.of_array s [| 1.0 +. 1e-12; 2.0 |] in
  Alcotest.(check bool) "within tol" true (Dense.equal a b);
  let c = Dense.of_array s [| 1.1; 2.0 |] in
  Alcotest.(check bool) "outside tol" false (Dense.equal a c)

(* ---------- Ops ---------- *)

let test_matmul_identity () =
  let a = Dense.random ~seed:5 (Shape.create [ 4; 4 ]) in
  check_close "A * I = A" (Ops.matmul a (Dense.identity 4)) a;
  check_close "I * A = A" (Ops.matmul (Dense.identity 4) a) a

let test_matmul_known () =
  let a = Dense.of_array (Shape.create [ 2; 2 ]) [| 1.; 2.; 3.; 4. |] in
  let b = Dense.of_array (Shape.create [ 2; 2 ]) [| 5.; 6.; 7.; 8. |] in
  let expect = Dense.of_array (Shape.create [ 2; 2 ]) [| 19.; 22.; 43.; 50. |] in
  check_close "2x2 matmul" (Ops.matmul a b) expect

let test_contract_trace () =
  let a = Dense.of_array (Shape.create [ 3; 3 ]) [| 1.; 0.; 0.; 0.; 5.; 0.; 0.; 0.; 7. |] in
  let tr = Ops.contract a [ (0, 1) ] in
  Alcotest.(check (float 1e-12)) "trace" 13.0 (Dense.get tr [])

let test_contract_matvec () =
  let a = Dense.of_array (Shape.create [ 2; 2 ]) [| 1.; 2.; 3.; 4. |] in
  let x = Dense.of_array (Shape.create [ 2 ]) [| 1.; 1. |] in
  let y = Ops.contract_product [ a; x ] [ (1, 2) ] in
  check_close "matvec" y (Dense.of_array (Shape.create [ 2 ]) [| 3.; 7. |])

let test_contract_transposed_matvec () =
  let a = Dense.of_array (Shape.create [ 2; 2 ]) [| 1.; 2.; 3.; 4. |] in
  let x = Dense.of_array (Shape.create [ 2 ]) [| 1.; 1. |] in
  (* contracting a's FIRST dim: y_j = sum_i a[i,j] x[i] *)
  let y = Ops.contract_product [ a; x ] [ (0, 2) ] in
  check_close "A^T x" y (Dense.of_array (Shape.create [ 2 ]) [| 4.; 6. |])

let test_contract_vs_materialized_outer () =
  (* For small tensors, contracting the product lazily must equal
     materializing the outer product and self-contracting. *)
  let a = Dense.random ~seed:1 (Shape.create [ 3; 4 ]) in
  let b = Dense.random ~seed:2 (Shape.create [ 4; 2 ]) in
  let lazy_c = Ops.contract_product [ a; b ] [ (1, 2) ] in
  let mat_c = Ops.contract (Ops.outer a b) [ (1, 2) ] in
  check_close "lazy = materialized" lazy_c mat_c

let test_contract_errors () =
  let a = Dense.random ~seed:1 (Shape.create [ 3; 4 ]) in
  let expect_error f =
    match f () with
    | _ -> Alcotest.fail "expected Ops.Error"
    | exception Ops.Error _ -> ()
  in
  expect_error (fun () -> Ops.contract_product [] []);
  expect_error (fun () -> Ops.contract a [ (0, 1) ]) (* extents 3 vs 4 *);
  expect_error (fun () -> Ops.contract a [ (0, 0) ]);
  expect_error (fun () -> Ops.contract a [ (0, 5) ]);
  expect_error (fun () -> Ops.contract_product [ a; a ] [ (1, 2); (2, 3) ])

let test_hadamard () =
  let s = Shape.create [ 2; 2 ] in
  let a = Dense.of_array s [| 1.; 2.; 3.; 4. |] in
  let b = Dense.of_array s [| 2.; 3.; 4.; 5. |] in
  check_close "hadamard" (Ops.hadamard a b) (Dense.of_array s [| 2.; 6.; 12.; 20. |])

let test_add_sub () =
  let s = Shape.create [ 3 ] in
  let a = Dense.random ~seed:9 s in
  let b = Dense.random ~seed:10 s in
  check_close "a+b-b = a" (Ops.sub (Ops.add a b) b) a

let test_transpose_involution () =
  let a = Dense.random ~seed:11 (Shape.create [ 2; 3; 4 ]) in
  let p = [ 2; 0; 1 ] in
  let inv = [ 1; 2; 0 ] in
  check_close "transpose inverse" (Ops.transpose (Ops.transpose a p) inv) a

let test_transpose_shape () =
  let a = Dense.random ~seed:12 (Shape.create [ 2; 3; 4 ]) in
  let t = Ops.transpose a [ 2; 0; 1 ] in
  Alcotest.(check (list int)) "shape" [ 4; 2; 3 ] (Shape.dims (Dense.shape t));
  Alcotest.(check (float 0.)) "element" (Dense.get a [ 1; 2; 3 ]) (Dense.get t [ 3; 1; 2 ])

let test_transpose_invalid () =
  let a = Dense.random ~seed:12 (Shape.create [ 2; 3 ]) in
  match Ops.transpose a [ 0; 0 ] with
  | _ -> Alcotest.fail "expected Ops.Error"
  | exception Ops.Error _ -> ()

let test_outer_scalar () =
  let a = Dense.scalar 3.0 and b = Dense.random ~seed:1 (Shape.create [ 2 ]) in
  check_close "scalar outer" (Ops.outer a b) (Ops.scale 3.0 b)

let test_frobenius () =
  let a = Dense.of_array (Shape.create [ 2 ]) [| 3.; 4. |] in
  Alcotest.(check (float 1e-12)) "norm" 5.0 (Ops.frobenius a)

(* ---------- Helmholtz ---------- *)

let test_helmholtz_identity () =
  (* With S = I and D = 1, the operator is the identity map on u. *)
  let inputs = Helmholtz.identity_inputs 5 in
  check_close "direct identity" (Helmholtz.direct inputs) inputs.u;
  check_close "factorized identity" (Helmholtz.factorized inputs) inputs.u

let test_helmholtz_direct_vs_factorized () =
  List.iter
    (fun n ->
      let inputs = Helmholtz.make_inputs ~seed:(100 + n) n in
      check_close ~tol:1e-8
        (Printf.sprintf "n=%d direct = factorized" n)
        (Helmholtz.direct inputs)
        (Helmholtz.factorized inputs))
    [ 2; 3; 4; 5 ]

let test_helmholtz_diagonal_scaling () =
  (* With S = I, the operator reduces to the Hadamard product with D. *)
  let n = 4 in
  let d = Dense.random ~seed:21 (Shape.cube 3 n) in
  let u = Dense.random ~seed:22 (Shape.cube 3 n) in
  let inputs = { Helmholtz.s = Dense.identity n; d; u } in
  check_close "D scaling" (Helmholtz.direct inputs) (Ops.hadamard d u)

let test_helmholtz_linearity () =
  (* The operator is linear in u for fixed S, D. *)
  let n = 3 in
  let base = Helmholtz.make_inputs ~seed:31 n in
  let u2 = Dense.random ~seed:32 (Shape.cube 3 n) in
  let sum_inputs = { base with u = Ops.add base.u u2 } in
  let v1 = Helmholtz.direct base in
  let v2 = Helmholtz.direct { base with u = u2 } in
  check_close ~tol:1e-8 "linear in u" (Helmholtz.direct sum_inputs) (Ops.add v1 v2)

let test_helmholtz_interpolation_subsumed () =
  (* Interpolation equals stage (1a) of the full operator. *)
  let inputs = Helmholtz.make_inputs ~seed:41 4 in
  check_close "interpolation = t stage"
    (Helmholtz.interpolation inputs.s inputs.u)
    (Helmholtz.direct_t inputs)

let test_helmholtz_flop_counts () =
  Alcotest.(check int) "direct n=11"
    ((8 * 1331 * 1331) + 1331)
    (Helmholtz.flops_direct 11);
  Alcotest.(check int) "factorized n=11"
    ((12 * 11 * 1331) + 1331)
    (Helmholtz.flops_factorized 11);
  Alcotest.(check bool) "factorized cheaper" true
    (Helmholtz.flops_factorized 11 < Helmholtz.flops_direct 11)

(* ---------- property-based ---------- *)

let small_shape_gen =
  QCheck.Gen.(
    let* r = int_range 0 3 in
    let* dims = list_repeat r (int_range 1 4) in
    return dims)

let qcheck_linearize_bijective =
  QCheck.Test.make ~name:"shape linearize is a bijection" ~count:200
    (QCheck.make small_shape_gen) (fun dims ->
      let s = Shape.create dims in
      let seen = Hashtbl.create 16 in
      Shape.iter s (fun idx ->
          let off = Shape.linearize s idx in
          QCheck.assume (not (Hashtbl.mem seen off));
          Hashtbl.add seen off ());
      Hashtbl.length seen = Shape.num_elements s)

let qcheck_matmul_assoc =
  QCheck.Test.make ~name:"matmul associativity" ~count:50
    QCheck.(triple small_int small_int small_int)
    (fun (sa, sb, sc) ->
      let seed_a = (sa mod 100) + 1
      and seed_b = (sb mod 100) + 1
      and seed_c = (sc mod 100) + 1 in
      let m = Shape.create [ 3; 3 ] in
      let a = Dense.random ~seed:seed_a m in
      let b = Dense.random ~seed:seed_b m in
      let c = Dense.random ~seed:seed_c m in
      Dense.equal ~tol:1e-7
        (Ops.matmul a (Ops.matmul b c))
        (Ops.matmul (Ops.matmul a b) c))

let qcheck_hadamard_commutes =
  QCheck.Test.make ~name:"hadamard commutes" ~count:100
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let sh = Shape.create [ 2; 3 ] in
      let a = Dense.random ~seed:(s1 mod 50) sh in
      let b = Dense.random ~seed:(s2 mod 50) sh in
      Dense.equal (Ops.hadamard a b) (Ops.hadamard b a))

let qcheck_helmholtz_scaling =
  QCheck.Test.make ~name:"helmholtz homogeneous in u" ~count:20
    QCheck.(int_range 2 4)
    (fun n ->
      let inputs = Helmholtz.make_inputs ~seed:n n in
      let scaled = { inputs with Helmholtz.u = Ops.scale 2.0 inputs.Helmholtz.u } in
      Dense.equal ~tol:1e-8
        (Helmholtz.direct scaled)
        (Ops.scale 2.0 (Helmholtz.direct inputs)))

let qcheck_transpose_preserves_norm =
  QCheck.Test.make ~name:"transpose preserves frobenius" ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let a = Dense.random ~seed (Shape.create [ 2; 3; 4 ]) in
      let t = Ops.transpose a [ 2; 0; 1 ] in
      Float.abs (Ops.frobenius a -. Ops.frobenius t) < 1e-9)

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "tensor.shape",
      [
        case "basics" test_shape_basics;
        case "scalar" test_shape_scalar;
        case "invalid" test_shape_invalid;
        case "linearize roundtrip" test_shape_linearize_roundtrip;
        case "linearize out-of-bounds" test_shape_linearize_oob;
        case "iter row-major order" test_shape_iter_order;
        case "concat & remove_dims" test_shape_concat_remove;
        case "cube" test_shape_cube;
        Test_seed.to_alcotest qcheck_linearize_bijective;
      ] );
    ( "tensor.dense",
      [
        case "init & get" test_dense_init_get;
        case "set" test_dense_set;
        case "random deterministic" test_dense_random_deterministic;
        case "identity" test_dense_identity;
        case "of_array mismatch" test_dense_of_array_mismatch;
        case "copy isolated" test_dense_copy_isolated;
        case "equal tolerance" test_dense_equal_tolerance;
      ] );
    ( "tensor.ops",
      [
        case "matmul identity" test_matmul_identity;
        case "matmul known" test_matmul_known;
        case "trace" test_contract_trace;
        case "matvec" test_contract_matvec;
        case "transposed matvec" test_contract_transposed_matvec;
        case "lazy = materialized contraction" test_contract_vs_materialized_outer;
        case "contraction errors" test_contract_errors;
        case "hadamard" test_hadamard;
        case "add/sub" test_add_sub;
        case "transpose involution" test_transpose_involution;
        case "transpose shape" test_transpose_shape;
        case "transpose invalid" test_transpose_invalid;
        case "outer with scalar" test_outer_scalar;
        case "frobenius" test_frobenius;
        Test_seed.to_alcotest qcheck_matmul_assoc;
        Test_seed.to_alcotest qcheck_hadamard_commutes;
        Test_seed.to_alcotest qcheck_transpose_preserves_norm;
      ] );
    ( "tensor.helmholtz",
      [
        case "identity operator" test_helmholtz_identity;
        case "direct = factorized" test_helmholtz_direct_vs_factorized;
        case "diagonal scaling" test_helmholtz_diagonal_scaling;
        case "linearity" test_helmholtz_linearity;
        case "interpolation subsumed" test_helmholtz_interpolation_subsumed;
        case "flop counts" test_helmholtz_flop_counts;
        Test_seed.to_alcotest qcheck_helmholtz_scaling;
      ] );
  ]
