(* Device-cycle timeline: reconciliation of the captured phase stream
   against Sim.Perf's aggregates and Analysis.Cost's closed form on
   every kernel in the tree (plain and overlapped legs), the overlap
   pipeline law (steady block = max(transfers, compute)), the m >= 2k
   double-buffering diagnostic at both the Sim.Perf and policy layers,
   byte-deterministic Chrome trace export, and the disabled gate's zero
   footprint — bit-identical hw results, no allocation. *)

open Cfd_core
module TL = Obs.Timeline
module Timeline = Cfd_core.Timeline
module D = Analysis.Diagnostic

let case name f = Alcotest.test_case name `Quick f

let kernels_dir () =
  if Sys.file_exists "../kernels" then "../kernels" else "kernels"

let kernel_files () =
  Sys.readdir (kernels_dir ())
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cfd")
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compile_kernel file =
  match
    Compile.compile_source (read_file (Filename.concat (kernels_dir ()) file))
  with
  | Ok r -> r
  | Error m -> Alcotest.failf "%s: %s" file m

let board = Sysgen.Replicate.default_config.Sysgen.Replicate.board

let contains needle haystack =
  try
    ignore (Str.search_forward (Str.regexp_string needle) haystack 0);
    true
  with Not_found -> false

let rules ds = List.sort_uniq compare (List.map (fun d -> d.D.rule) ds)

(* ------------------------------------------------------------------ *)
(* Reconciliation: every kernel, both legs                             *)
(* ------------------------------------------------------------------ *)

(* The acceptance bar of the timeline: on every kernel in the tree, the
   phase durations captured on the modeled cycle clock must sum exactly
   to the simulator's aggregate counters (host = total, ctrl = exec,
   dma = transfer) and match the static cost model's closed form — zero
   timeline-drift errors, under both run_hw and run_hw_overlapped. *)
let test_every_kernel_reconciles () =
  let files = kernel_files () in
  Alcotest.(check bool) "found kernels" true (files <> []);
  List.iter
    (fun file ->
      let r = compile_kernel file in
      let report = Timeline.analyze ~n_elements:512 r in
      let ds = Timeline.diagnostics report in
      if not (Timeline.passed report) then
        Alcotest.failf "%s: timeline drift: %s" file
          (String.concat "; "
             (List.map (fun d -> d.D.rule ^ ":" ^ d.D.subject) (D.errors ds)));
      (match Timeline.find_leg report "plain" with
      | None -> Alcotest.failf "%s: no plain leg" file
      | Some _ -> ());
      List.iter
        (fun (leg : Timeline.leg) ->
          let cap = leg.Timeline.leg_capture in
          let hw = leg.Timeline.leg_hw in
          Alcotest.(check int)
            (Printf.sprintf "%s %s: host busy = total" file
               leg.Timeline.leg_label)
            hw.Sim.Perf.total_cycles (TL.busy cap "host");
          Alcotest.(check int)
            (Printf.sprintf "%s %s: ctrl busy = exec" file
               leg.Timeline.leg_label)
            hw.Sim.Perf.exec_cycles (TL.busy cap "ctrl");
          Alcotest.(check int)
            (Printf.sprintf "%s %s: dma busy = transfer" file
               leg.Timeline.leg_label)
            hw.Sim.Perf.transfer_cycles (TL.busy cap "dma");
          Alcotest.(check int)
            (Printf.sprintf "%s %s: cost closed form agrees" file
               leg.Timeline.leg_label)
            hw.Sim.Perf.total_cycles
            leg.Timeline.leg_estimate.Analysis.Cost.ce_total_cycles)
        report.Timeline.tl_legs)
    files

(* The shares the CLI reports are consistent: on the plain leg compute
   and transfer shares partition the total; under overlap they sum past
   1 (that is the point of pipelining) and the efficiency is in [0,1]. *)
let test_derived_metrics_consistent () =
  let r = compile_kernel "inverse_helmholtz.cfd" in
  let report =
    Timeline.analyze ~force_k:8 ~force_m:16 ~overlap:Timeline.Require
      ~n_elements:2048 r
  in
  Alcotest.(check bool) "reconciled" true (Timeline.passed report);
  let leg label =
    match Timeline.find_leg report label with
    | Some l -> l
    | None -> Alcotest.failf "missing leg %s" label
  in
  let plain = leg "plain" and ov = leg "overlapped" in
  let pd = plain.Timeline.leg_derived and od = ov.Timeline.leg_derived in
  Alcotest.(check bool) "plain shares partition the total" true
    (Float.abs
       (pd.Timeline.d_compute_share +. pd.Timeline.d_transfer_share -. 1.0)
    < 1e-9);
  Alcotest.(check bool) "plain leg has no overlap" true
    (pd.Timeline.d_overlap_efficiency = 0.0);
  Alcotest.(check bool) "overlapped shares exceed 1" true
    (od.Timeline.d_compute_share +. od.Timeline.d_transfer_share > 1.0);
  Alcotest.(check bool) "overlap efficiency in [0,1]" true
    (od.Timeline.d_overlap_efficiency >= 0.0
    && od.Timeline.d_overlap_efficiency <= 1.0);
  Alcotest.(check bool) "same shape: overlap no slower" true
    (od.Timeline.d_total_cycles <= pd.Timeline.d_total_cycles)

(* ------------------------------------------------------------------ *)
(* Overlap law: steady block = max(transfers, compute)                 *)
(* ------------------------------------------------------------------ *)

let overlap_law_holds ~(plain : Sim.Perf.hw_result)
    ~(ov : Sim.Perf.hw_result) ~blocks =
  let io = plain.Sim.Perf.transfer_cycles / blocks in
  let comp = plain.Sim.Perf.exec_cycles / blocks in
  plain.Sim.Perf.transfer_cycles mod blocks = 0
  && plain.Sim.Perf.exec_cycles mod blocks = 0
  && ov.Sim.Perf.total_cycles = io + (blocks * max io comp)

let test_overlap_law () =
  let r = Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:11 ()) in
  let sys = Compile.build_system ~force_k:8 ~force_m:16 ~n_elements:4096 r in
  let plain = Sim.Perf.run_hw ~system:sys ~board in
  let ov = Sim.Perf.run_hw_overlapped ~system:sys ~board in
  let blocks = 4096 / 16 in
  Alcotest.(check int) "exec cycles are mode-independent"
    plain.Sim.Perf.exec_cycles ov.Sim.Perf.exec_cycles;
  Alcotest.(check int) "transfer cycles are mode-independent"
    plain.Sim.Perf.transfer_cycles ov.Sim.Perf.transfer_cycles;
  Alcotest.(check bool) "total = io_block + blocks * max(io, compute)" true
    (overlap_law_holds ~plain ~ov ~blocks);
  (* this kernel is compute-bound at p=11: every transfer except the
     first block's fill hides behind compute, so the overlapped total
     collapses to one io block plus the full execution *)
  let io = plain.Sim.Perf.transfer_cycles / blocks in
  let comp = plain.Sim.Perf.exec_cycles / blocks in
  Alcotest.(check bool) "compute dominates at p=11" true (comp > io);
  Alcotest.(check int) "total collapses to io_block + exec"
    (io + plain.Sim.Perf.exec_cycles)
    ov.Sim.Perf.total_cycles

(* Randomized: for any feasible shape the overlapped run obeys the
   pipeline law and never loses to the plain run on the same shape. *)
let qcheck_overlap_law =
  let compiled = Hashtbl.create 4 in
  let compile_p p =
    match Hashtbl.find_opt compiled p with
    | Some r -> r
    | None ->
        let r = Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p ()) in
        Hashtbl.add compiled p r;
        r
  in
  QCheck.Test.make
    ~name:"overlapped <= plain and steady block = max(io, compute)" ~count:30
    QCheck.(
      quad (int_range 2 4) (int_range 1 3) (int_range 2 4) (int_range 1 3))
    (fun (p, k, batch, blocks) ->
      let m = k * batch in
      let n = m * blocks in
      let r = compile_p p in
      match Compile.build_system ~force_k:k ~force_m:m ~n_elements:n r with
      | exception Sysgen.Replicate.Infeasible _ -> true
      | sys ->
          let plain = Sim.Perf.run_hw ~system:sys ~board in
          let ov = Sim.Perf.run_hw_overlapped ~system:sys ~board in
          (ov.Sim.Perf.total_cycles <= plain.Sim.Perf.total_cycles
          && overlap_law_holds ~plain ~ov ~blocks)
          || QCheck.Test.fail_reportf
               "p=%d k=%d m=%d n=%d: plain=%d overlapped=%d" p k m n
               plain.Sim.Perf.total_cycles ov.Sim.Perf.total_cycles)

(* ------------------------------------------------------------------ *)
(* m >= 2k: stable diagnostic at every layer                           *)
(* ------------------------------------------------------------------ *)

let test_overlap_requirement_message () =
  (match Sim.Perf.overlap_requirement ~k:8 ~m:16 with
  | None -> ()
  | Some msg -> Alcotest.failf "m = 2k should be feasible: %s" msg);
  (match Sim.Perf.overlap_requirement ~k:8 ~m:8 with
  | None -> Alcotest.fail "m < 2k should be rejected"
  | Some msg ->
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "message names %S" needle)
            true (contains needle msg))
        [ "m >= 2k"; "m=8"; "2k=16"; "k=8" ]);
  let r = Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:11 ()) in
  let sys = Compile.build_system ~force_k:8 ~force_m:8 ~n_elements:64 r in
  match Sim.Perf.run_hw_overlapped ~system:sys ~board with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "exception carries the requirement" true
        (contains "m >= 2k" msg && contains "m=8" msg)

(* Require policy: an infeasible shape is a diagnostic, not an
   exception, and the plain leg still reconciles. *)
let test_require_policy_diagnostic () =
  let r = compile_kernel "inverse_helmholtz.cfd" in
  let report =
    Timeline.analyze ~force_k:8 ~force_m:8 ~overlap:Timeline.Require
      ~n_elements:64 r
  in
  Alcotest.(check bool) "overlapped leg withheld" true
    (Timeline.find_leg report "overlapped" = None);
  Alcotest.(check bool) "plain leg still present" true
    (Timeline.find_leg report "plain" <> None);
  Alcotest.(check (list string))
    "sim-overlap-infeasible error" [ "sim-overlap-infeasible" ]
    (rules (D.errors (Timeline.diagnostics report)));
  Alcotest.(check bool) "report fails" false (Timeline.passed report)

(* Auto policy: same infeasible shape, but the leg runs on a reshaped
   k (largest divisor of m with 2k <= m) and still reconciles. *)
let test_auto_policy_reshapes () =
  let r = compile_kernel "inverse_helmholtz.cfd" in
  let report = Timeline.analyze ~force_k:8 ~force_m:8 ~n_elements:64 r in
  Alcotest.(check bool) "reconciled" true (Timeline.passed report);
  match Timeline.find_leg report "overlapped" with
  | None -> Alcotest.fail "Auto policy should reshape, not skip"
  | Some leg ->
      Alcotest.(check int) "m kept" 8
        leg.Timeline.leg_shape.Analysis.Cost.sh_m;
      Alcotest.(check int) "k shrunk to the largest feasible divisor" 4
        leg.Timeline.leg_shape.Analysis.Cost.sh_k

(* ------------------------------------------------------------------ *)
(* Chrome trace export: byte determinism                               *)
(* ------------------------------------------------------------------ *)

let test_chrome_trace_deterministic () =
  let r = compile_kernel "mass.cfd" in
  let render () =
    let report = Timeline.analyze ~n_elements:128 r in
    ( Obs.Json.to_string (Timeline.chrome_trace report),
      Obs.Json.to_string (Timeline.to_json report) )
  in
  let trace1, json1 = render () in
  let trace2, json2 = render () in
  Alcotest.(check string) "trace byte-identical across runs" trace1 trace2;
  Alcotest.(check string) "report JSON byte-identical across runs" json1
    json2;
  match Obs.Json.parse trace1 with
  | Error e -> Alcotest.failf "trace does not parse: %s" e
  | Ok j -> (
      match Obs.Json.member "traceEvents" j with
      | Some (Obs.Json.List (_ :: _)) -> ()
      | _ -> Alcotest.fail "traceEvents missing or empty")

(* ------------------------------------------------------------------ *)
(* Disabled gate: bit-identical results, zero allocation               *)
(* ------------------------------------------------------------------ *)

(* The timeline must be a pure observer: running the performance model
   with the gate on yields the same hw_result, bit for bit, as with the
   gate off — and the disabled store stays empty. *)
let test_disabled_gate_identical () =
  let r = Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:4 ()) in
  let sys = Compile.build_system ~force_k:2 ~force_m:4 ~n_elements:8 r in
  let run f =
    TL.set_enabled false;
    TL.reset ();
    let off = f () in
    let on =
      TL.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          TL.set_enabled false;
          TL.reset ())
        f
    in
    (off, on)
  in
  let off, on = run (fun () -> Sim.Perf.run_hw ~system:sys ~board) in
  Alcotest.(check bool) "run_hw bit-identical under the gate" true
    (Stdlib.compare off on = 0);
  let off, on =
    run (fun () -> Sim.Perf.run_hw_overlapped ~system:sys ~board)
  in
  Alcotest.(check bool) "run_hw_overlapped bit-identical under the gate" true
    (Stdlib.compare off on = 0);
  TL.set_enabled false;
  TL.reset ();
  ignore (Sim.Perf.run_hw ~system:sys ~board);
  let cap = TL.capture () in
  Alcotest.(check int) "disabled run records no phases" 0
    (List.length cap.TL.cap_phases)

(* Same contract as the flight recorder (test_flight.ml): the disabled
   emitters are one branch — 10k calls must not move the minor heap by
   more than the measurement's own constant. *)
let test_disabled_zero_alloc () =
  TL.set_enabled false;
  let iters = 10_000 in
  let measure f =
    let w0 = Gc.minor_words () in
    for _ = 1 to iters do
      f ()
    done;
    Gc.minor_words () -. w0
  in
  let phase_words =
    measure (fun () ->
        TL.phase ~track:"host" ~name:"dma-in" ~start:0 ~dur:1 ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "disabled phase allocates nothing (%.0f words)"
       phase_words)
    true
    (phase_words < 1_000.0);
  let sample_words =
    measure (fun () ->
        TL.sample ~track:"plm:u" ~series:"port-pressure" ~cycle:0 ~value:1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "disabled sample allocates nothing (%.0f words)"
       sample_words)
    true
    (sample_words < 1_000.0)

let suite =
  [
    ( "timeline.reconcile",
      [
        case "every kernel, both legs, zero drift"
          test_every_kernel_reconciles;
        case "derived metrics are consistent" test_derived_metrics_consistent;
      ] );
    ( "timeline.overlap",
      [
        case "steady block = max(transfers, compute)" test_overlap_law;
        QCheck_alcotest.to_alcotest qcheck_overlap_law;
        case "m < 2k: stable requirement message"
          test_overlap_requirement_message;
        case "Require policy: diagnostic not exception"
          test_require_policy_diagnostic;
        case "Auto policy: reshapes k under m" test_auto_policy_reshapes;
      ] );
    ( "timeline.export",
      [ case "Chrome trace byte-deterministic" test_chrome_trace_deterministic ]
    );
    ( "timeline.disabled",
      [
        case "gate off: bit-identical hw results" test_disabled_gate_identical;
        case "gate off: emitters allocate nothing" test_disabled_zero_alloc;
      ] );
  ]
