(* Tests for lib/tir: builder, validation, interpreter, transforms. *)

open Cfdlang
open Tensor

let case name f = Alcotest.test_case name `Quick f

let checked_of src =
  match Check.parse_and_check src with
  | Ok c -> c
  | Error e -> Alcotest.failf "type error: %a" Check.pp_error e

let helmholtz_checked ?(p = 11) () = Check.check_exn (Ast.inverse_helmholtz ~p ())

let check_close ?(tol = 1e-8) msg a b =
  if not (Dense.equal ~tol a b) then
    Alcotest.failf "%s: tensors differ (max diff %g)" msg (Dense.max_abs_diff a b)

(* Run CFDlang eval and TIR interp on the same inputs and compare. *)
let agree ?(seed = 0) ?(tol = 1e-8) checked kernel =
  let inputs = Eval.random_inputs ~seed checked in
  let ast_out = Eval.run checked inputs in
  let tir_out = Tir.Interp.run kernel inputs in
  List.iter
    (fun (name, expected) ->
      match List.assoc_opt name tir_out with
      | None -> Alcotest.failf "missing TIR output %s" name
      | Some got -> check_close ~tol ("output " ^ name) got expected)
    ast_out

(* ---------- builder ---------- *)

let test_build_helmholtz () =
  let checked = helmholtz_checked ~p:4 () in
  let kernel = Tir.Builder.build ~name:"helm" checked in
  Alcotest.(check int) "inputs" 3 (List.length kernel.Tir.Ir.inputs);
  Alcotest.(check int) "outputs" 1 (List.length kernel.Tir.Ir.outputs);
  (* t, r, v: three defs, no transients needed *)
  Alcotest.(check int) "defs" 3 (List.length kernel.Tir.Ir.defs);
  agree checked kernel

let test_build_no_materialized_product () =
  (* The contraction consumes the product chain directly: no def may have
     a shape larger than p^4 elements. *)
  let kernel = Tir.Builder.build (helmholtz_checked ~p:4 ()) in
  List.iter
    (fun (d : Tir.Ir.def) ->
      let size = List.fold_left ( * ) 1 d.Tir.Ir.shape in
      Alcotest.(check bool) "no blowup" true (size <= 4 * 4 * 4))
    kernel.Tir.Ir.defs

let test_build_arith_chain () =
  let checked =
    checked_of
      "var input a : [3]\nvar input b : [3]\nvar output c : [3]\n\
       c = (a + b) * (a - b) / (b * b + 1)"
  in
  let kernel = Tir.Builder.build checked in
  agree checked kernel

let test_build_nested_contraction () =
  let checked =
    checked_of
      "var input A : [3 3]\nvar input B : [3 3]\nvar output C : [3 3]\n\
       C = A # B . [[1 2]]"
  in
  agree checked (Tir.Builder.build checked)

let test_build_materialized_outer () =
  let checked =
    checked_of
      "var input a : [2]\nvar input b : [3]\nvar output o : [2 3]\no = a # b"
  in
  agree checked (Tir.Builder.build checked)

let test_build_copy_stmt () =
  let checked =
    checked_of "var input a : [4]\nvar output b : [4]\nb = a"
  in
  agree checked (Tir.Builder.build checked)

let test_build_interpolation () =
  let checked = Check.check_exn (Ast.interpolation ~p:5 ()) in
  agree checked (Tir.Builder.build checked)

(* ---------- validation ---------- *)

let test_validate_rejects_double_def () =
  let bad =
    {
      Tir.Ir.name = "bad";
      inputs = [ ("a", [ 2 ]) ];
      outputs = [ ("b", [ 2 ]) ];
      defs =
        [
          { Tir.Ir.id = "b"; shape = [ 2 ]; op = Tir.Ir.Contract { factors = [ "a" ]; pairs = [] } };
          { Tir.Ir.id = "b"; shape = [ 2 ]; op = Tir.Ir.Contract { factors = [ "a" ]; pairs = [] } };
        ];
    }
  in
  match Tir.Ir.validate bad with
  | () -> Alcotest.fail "expected Ill_formed"
  | exception Tir.Ir.Ill_formed _ -> ()

let test_validate_rejects_wrong_shape () =
  let bad =
    {
      Tir.Ir.name = "bad";
      inputs = [ ("a", [ 2 ]) ];
      outputs = [ ("b", [ 3 ]) ];
      defs =
        [ { Tir.Ir.id = "b"; shape = [ 3 ]; op = Tir.Ir.Contract { factors = [ "a" ]; pairs = [] } } ];
    }
  in
  match Tir.Ir.validate bad with
  | () -> Alcotest.fail "expected Ill_formed"
  | exception Tir.Ir.Ill_formed _ -> ()

let test_validate_rejects_use_before_def () =
  let bad =
    {
      Tir.Ir.name = "bad";
      inputs = [ ("a", [ 2 ]) ];
      outputs = [ ("b", [ 2 ]) ];
      defs =
        [
          { Tir.Ir.id = "b"; shape = [ 2 ]; op = Tir.Ir.Pointwise { f = Tir.Ir.Add; lhs = "a"; rhs = "c" } };
          { Tir.Ir.id = "c"; shape = [ 2 ]; op = Tir.Ir.Contract { factors = [ "a" ]; pairs = [] } };
        ];
    }
  in
  match Tir.Ir.validate bad with
  | () -> Alcotest.fail "expected Ill_formed"
  | exception Tir.Ir.Ill_formed _ -> ()

let test_validate_rejects_missing_output () =
  let bad =
    { Tir.Ir.name = "bad"; inputs = [ ("a", [ 2 ]) ]; outputs = [ ("b", [ 2 ]) ]; defs = [] }
  in
  match Tir.Ir.validate bad with
  | () -> Alcotest.fail "expected Ill_formed"
  | exception Tir.Ir.Ill_formed _ -> ()

(* ---------- flops ---------- *)

let test_flops_direct_helmholtz () =
  let kernel = Tir.Builder.build (helmholtz_checked ~p:11 ()) in
  Alcotest.(check int) "matches reference direct count"
    (Helmholtz.flops_direct 11)
    (Tir.Ir.kernel_flops kernel)

let test_flops_factorized_helmholtz () =
  let kernel =
    Tir.Transform.factorize (Tir.Builder.build (helmholtz_checked ~p:11 ()))
  in
  Alcotest.(check int) "matches reference factorized count"
    (Helmholtz.flops_factorized 11)
    (Tir.Ir.kernel_flops kernel)

(* ---------- factorization ---------- *)

let test_factorize_helmholtz_structure () =
  let kernel = Tir.Builder.build (helmholtz_checked ~p:4 ()) in
  let fact = Tir.Transform.factorize kernel in
  (* 3 stages per contraction, 2 contractions, plus the Hadamard: 7 defs,
     and no multi-pair contractions remain. *)
  Alcotest.(check int) "defs" 7 (List.length fact.Tir.Ir.defs);
  List.iter
    (fun (d : Tir.Ir.def) ->
      match d.Tir.Ir.op with
      | Tir.Ir.Contract { pairs; _ } ->
          Alcotest.(check bool) "single pair" true (List.length pairs <= 1)
      | _ -> ())
    fact.Tir.Ir.defs

let test_factorize_preserves_semantics () =
  List.iter
    (fun p ->
      let checked = helmholtz_checked ~p () in
      let kernel = Tir.Builder.build checked in
      agree ~seed:p checked (Tir.Transform.factorize kernel))
    [ 2; 3; 4; 5 ]

let test_factorize_interpolation () =
  let checked = Check.check_exn (Ast.interpolation ~p:4 ()) in
  agree checked (Tir.Transform.factorize (Tir.Builder.build checked))

let test_factorize_skips_plain_matmul () =
  (* A single-pair contraction is already minimal: unchanged. *)
  let checked =
    checked_of
      "var input A : [3 3]\nvar input B : [3 3]\nvar output C : [3 3]\n\
       C = A # B . [[1 2]]"
  in
  let kernel = Tir.Builder.build checked in
  let fact = Tir.Transform.factorize kernel in
  Alcotest.(check int) "unchanged" (List.length kernel.Tir.Ir.defs)
    (List.length fact.Tir.Ir.defs);
  agree checked fact

let test_factorize_partial_core () =
  (* Core with an unpaired dimension: w = (M # T).[[0 2]] over T:[3 4],
     M:[3 5] -> out [5 4]; then a 2-matrix case over a rank-3 core where
     only two dims are contracted. *)
  let checked =
    checked_of
      "var input M : [4 3]\nvar input N : [4 5]\nvar input T : [3 4 5]\n\
       var output o : [4 4 4]\n\
       o = M # N # T . [[1 4] [3 6]]"
  in
  let kernel = Tir.Builder.build checked in
  let fact = Tir.Transform.factorize kernel in
  Alcotest.(check bool) "factorized into more defs" true
    (List.length fact.Tir.Ir.defs >= List.length kernel.Tir.Ir.defs);
  agree checked fact

let test_factorize_needs_transpose () =
  (* Matrices whose free dims appear in an order that differs from the
     core pairing order force a final transpose. Pair core dims in an
     order opposed to the matrix order: M paired with LAST core dim, N
     with FIRST. Output dims: M free (0), N free (2): out = [mfree nfree]
     -> [2 5]... construct shapes so a permutation is required. *)
  let checked =
    checked_of
      "var input M : [7 3]\nvar input N : [5 2]\nvar input T : [2 3]\n\
       var output o : [7 5]\n\
       o = M # N # T . [[1 5] [3 4]]"
  in
  (* dims: M:(0,1), N:(2,3), T:(4,5); pairs: M.1-T.1, N.1-T.0.
     output dims ascending: 0 (M free, extent 7), 2 (N free, extent 5). *)
  let kernel = Tir.Builder.build checked in
  agree checked (Tir.Transform.factorize kernel)

let qcheck_factorize_random_ttm =
  (* Random tensor-times-matrix chains: contract each core dim of a rank-3
     core with a random side of a fresh matrix; semantics must be
     preserved by factorization. *)
  QCheck.Test.make ~name:"factorization preserves random TTM contractions"
    ~count:60
    QCheck.(triple (int_range 2 4) (int_range 2 4) (pair bool (pair bool bool)))
    (fun (p, seed, (s0, (s1, s2))) ->
      let sides = [| s0; s1; s2 |] in
      (* matrix i has shape [p p]; paired dim chosen by sides.(i) *)
      let pair_for i =
        let mdim = (2 * i) + if sides.(i) then 0 else 1 in
        (mdim, 6 + i)
      in
      let src =
        Printf.sprintf
          "var input A : [%d %d]\nvar input B : [%d %d]\nvar input C : [%d %d]\n\
           var input T : [%d %d %d]\nvar output o : [%d %d %d]\n\
           o = A # B # C # T . [[%d %d] [%d %d] [%d %d]]"
          p p p p p p p p p p p p
          (fst (pair_for 0)) (snd (pair_for 0))
          (fst (pair_for 1)) (snd (pair_for 1))
          (fst (pair_for 2)) (snd (pair_for 2))
      in
      let checked = Result.get_ok (Check.parse_and_check src) in
      let kernel = Tir.Builder.build checked in
      let fact = Tir.Transform.factorize kernel in
      let inputs = Eval.random_inputs ~seed checked in
      let expected = List.assoc "o" (Eval.run checked inputs) in
      let got = List.assoc "o" (Tir.Interp.run fact inputs) in
      Dense.equal ~tol:1e-8 expected got)

(* ---------- copy propagation / DCE ---------- *)

let test_dce_removes_unused () =
  let checked =
    checked_of
      "var input a : [2]\nvar output b : [2]\nvar unused : [2]\n\
       unused = a + a\nb = a"
  in
  let kernel = Tir.Builder.build checked in
  let opt = Tir.Transform.dead_code_elimination kernel in
  Alcotest.(check int) "only b remains" 1 (List.length opt.Tir.Ir.defs);
  agree checked opt

let test_dce_keeps_chains () =
  let checked =
    checked_of
      "var input a : [2]\nvar output b : [2]\nvar t : [2]\nt = a + a\nb = t * a"
  in
  let kernel = Tir.Builder.build checked in
  let opt = Tir.Transform.dead_code_elimination kernel in
  Alcotest.(check int) "both kept" 2 (List.length opt.Tir.Ir.defs)

let test_cse_merges_duplicates () =
  let checked =
    checked_of
      "var input a : [3]\nvar input b : [3]\nvar output c : [3]\n\
       c = (a + b) * (a + b)"
  in
  let kernel = Tir.Builder.build checked in
  let cse = Tir.Transform.common_subexpression_elimination kernel in
  Alcotest.(check bool) "fewer defs" true
    (List.length cse.Tir.Ir.defs < List.length kernel.Tir.Ir.defs);
  agree checked cse

let test_cse_keeps_named () =
  let checked =
    checked_of
      "var input a : [3]\nvar output c : [3]\nvar t : [3]\nvar s : [3]\n\
       t = a + a\ns = a + a\nc = t * s"
  in
  let kernel = Tir.Builder.build checked in
  let cse = Tir.Transform.common_subexpression_elimination kernel in
  (* t and s are named: both survive (only transients merge) *)
  Alcotest.(check int) "named kept" (List.length kernel.Tir.Ir.defs)
    (List.length cse.Tir.Ir.defs);
  agree checked cse

let test_unary_minus_pipeline () =
  let checked =
    checked_of "var input a : [3]\nvar output b : [3]\nb = -a + a * 2.0"
  in
  agree checked (Tir.Builder.build checked)

let test_optimize_pipeline_semantics () =
  let checked = helmholtz_checked ~p:3 () in
  let kernel = Tir.Builder.build checked in
  agree checked (Tir.Transform.optimize ~factorize_contractions:true kernel);
  agree checked (Tir.Transform.optimize ~factorize_contractions:false kernel)

(* ---------- interp error handling ---------- *)

let test_interp_missing_input () =
  let kernel = Tir.Builder.build (helmholtz_checked ~p:2 ()) in
  match Tir.Interp.run kernel [] with
  | _ -> Alcotest.fail "expected Interp.Error"
  | exception Tir.Interp.Error _ -> ()

let suite =
  [
    ( "tir.builder",
      [
        case "helmholtz kernel" test_build_helmholtz;
        case "no materialized product" test_build_no_materialized_product;
        case "arithmetic chain" test_build_arith_chain;
        case "nested contraction" test_build_nested_contraction;
        case "materialized outer product" test_build_materialized_outer;
        case "copy statement" test_build_copy_stmt;
        case "interpolation" test_build_interpolation;
      ] );
    ( "tir.validate",
      [
        case "double definition" test_validate_rejects_double_def;
        case "wrong shape" test_validate_rejects_wrong_shape;
        case "use before def" test_validate_rejects_use_before_def;
        case "missing output" test_validate_rejects_missing_output;
      ] );
    ( "tir.flops",
      [
        case "direct helmholtz" test_flops_direct_helmholtz;
        case "factorized helmholtz" test_flops_factorized_helmholtz;
      ] );
    ( "tir.factorize",
      [
        case "structure" test_factorize_helmholtz_structure;
        case "preserves semantics" test_factorize_preserves_semantics;
        case "interpolation" test_factorize_interpolation;
        case "skips plain matmul" test_factorize_skips_plain_matmul;
        case "partial core" test_factorize_partial_core;
        case "needs transpose" test_factorize_needs_transpose;
        Test_seed.to_alcotest qcheck_factorize_random_ttm;
      ] );
    ( "tir.optimize",
      [
        case "dce removes unused" test_dce_removes_unused;
        case "dce keeps chains" test_dce_keeps_chains;
        case "cse merges duplicates" test_cse_merges_duplicates;
        case "cse keeps named tensors" test_cse_keeps_named;
        case "unary minus" test_unary_minus_pipeline;
        case "pipeline semantics" test_optimize_pipeline_semantics;
        case "interp missing input" test_interp_missing_input;
      ] );
  ]
